package scenario

import (
	"math"
	"reflect"
	"testing"
)

// FuzzScenarioParse hammers the -scenario grammar — the only
// user-facing parser in the repo beyond the preprocessing wire
// protocol. The oracle: Parse must never panic, and anything it
// accepts must be a well-formed scenario — every event it yields
// revalidates cleanly, resolves deterministically, and carries finite
// cost factors (no NaN/Inf smuggled through the grammar into the cost
// model).
func FuzzScenarioParse(f *testing.F) {
	for _, seed := range []string{
		// Every documented event kind, including the new workload-shift.
		"straggler:iters=2-5,rank=0,stage=1,factor=2.5,from=0.1,until=0.4",
		"straggler:iter=3",
		"preprocess:iters=2-4,factor=4",
		"preproc:iter=1,factor=2",
		"congestion:iters=1-3,factor=3",
		"workload-shift:iters=4-9,factor=3",
		"failure:iter=5,downtime=30",
		"producer-fail:iter=2,producer=1",
		"producer-join:iter=4,producer=1",
		// Fleet-scope grammar (multi-tenant runtime).
		"job-arrive:iter=2,job=1",
		"job-depart:iter=5,job=0",
		"node-fail:iter=3,node=2",
		"node-join:iter=6,node=2",
		"job-arrive:iter=0,job=1; node-fail:iter=2,node=0; node-join:iter=4,node=0",
		// Priority-scheduler grammar.
		"priority-arrive:iter=2,job=1,class=high",
		"priority-arrive:iter=2,job=1",
		"preempt-storm:iter=3,job=0,class=high,count=3",
		"preempt-storm:iter=1,job=2",
		"priority-arrive:iter=0,job=0,class=low; preempt-storm:iter=2,job=1,count=4",
		// Herd admission bursts.
		"herd:iter=0,job=0,count=4",
		"herd:iter=1,job=0",
		"herd:iter=1,job=0,count=0",
		"herd:iter=1,job=0,class=high",
		// Priority near-misses: bad class, zero/huge storm, wrong keys.
		"priority-arrive:iter=1,job=0,class=urgent",
		"preempt-storm:iter=1,job=0,count=0",
		"preempt-storm:iter=1,job=0,count=100000",
		"preempt-storm:iters=1-3,job=0",
		"job-arrive:iter=1,job=0,class=high",
		"node-fail:iter=1,count=2",
		"random-stragglers:seed=7,ranks=8,prob=0.3,max=3",
		// Multi-event composition and whitespace tolerance.
		"straggler:iters=2-4,rank=0,factor=3; failure:iter=6,downtime=20",
		" congestion:iter=1 ; ; preprocess:iter=2,factor=9 ",
		// Near-miss garbage the parser must reject, not mangle.
		"straggler:iter=1,iters=2-4",
		"straggler:iter=1,factor=nan",
		"failure:iter=1,downtime=inf",
		"random-stragglers:prob=nan",
		"random-stragglers:ranks=99999999999",
		"workload-shift:iters=1-2,factor=1e308",
		"straggler:iter=1,factor=2,factor=3",
		"failure:iters=2-5",
		"congestion:iter=1,rank=0",
		"job-arrive:iters=2-5",
		"node-fail:iter=1,job=0",
		"job-depart:iter=1,node=-1",
		":iter=1",
		"straggler:",
		"straggler:iter",
		"straggler:iters=9223372036854775807-9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse(%q) returned both a scenario and %v", spec, err)
			}
			return
		}
		if sc == nil {
			t.Fatalf("Parse(%q) returned nil scenario with nil error", spec)
		}
		_ = sc.Name()
		if g, ok := sc.(RandomStragglers); ok {
			if g.Ranks < 1 || g.Ranks > maxGeneratorRanks ||
				math.IsNaN(g.Prob) || g.Prob < 0 || g.Prob > 1 ||
				math.IsNaN(g.MaxFactor) || g.MaxFactor < 1 || g.MaxFactor > MaxFactor {
				t.Fatalf("Parse(%q) accepted out-of-range generator %+v", spec, g)
			}
		}
		for iter := 0; iter < 4; iter++ {
			evs := sc.EventsAt(iter)
			if again := sc.EventsAt(iter); !reflect.DeepEqual(evs, again) {
				t.Fatalf("Parse(%q): EventsAt(%d) nondeterministic: %v vs %v", spec, iter, evs, again)
			}
			p := At(sc, iter)
			for _, f := range []float64{p.PreprocessFactor(), p.P2PFactor(), p.ShiftFactor()} {
				if math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
					t.Fatalf("Parse(%q): non-finite perturbation factor %g at iter %d", spec, f, iter)
				}
			}
			for _, e := range evs {
				if err := e.Validate(); err != nil {
					t.Fatalf("Parse(%q) accepted invalid event %+v: %v", spec, e, err)
				}
			}
			if ev, ok := p.Failure(); ok && (math.IsNaN(ev.Downtime) || math.IsInf(ev.Downtime, 0) || ev.Downtime < 0) {
				t.Fatalf("Parse(%q): failure with unusable downtime %g", spec, ev.Downtime)
			}
		}
	})
}
