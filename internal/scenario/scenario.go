// Package scenario injects timed perturbation events into the training
// runtime: per-GPU slowdowns (stragglers), preprocessing-node
// degradation, transient link congestion, and node failures that force
// checkpoint-restore recovery — the failure/straggler dynamics that
// motivate disaggregated training in the first place (§2, §6; cf. the
// fault-tolerance emphasis of related MLLM-training systems). Every
// scenario is deterministic: the events affecting iteration i depend
// only on the scenario definition and i, never on call order or wall
// clock, so concurrent runtimes, prefetchers and replays all observe
// the same world.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"disttrain/internal/data"
	"disttrain/internal/model"
	"disttrain/internal/pipeline"
)

// Kind enumerates the perturbation families.
type Kind int

const (
	// Straggler slows pipeline-stage compute: a degraded GPU, thermal
	// throttling, a noisy neighbour. Factor is the slowdown (2 = half
	// speed); Rank/Stage restrict the blast radius; From/Until bound
	// the slowdown within each affected iteration's pipeline phase.
	Straggler Kind = iota
	// PreprocessDegrade slows the data path: disaggregated
	// preprocessing nodes (or co-located dataloader workers) deliver
	// the batch Factor times slower.
	PreprocessDegrade
	// LinkCongestion scales inter-stage activation/gradient transfer
	// (P2P) costs by Factor — a congested RDMA fabric.
	LinkCongestion
	// NodeFailure kills the training job at iteration Start: the
	// runtime pays Downtime seconds of detection/restart, restores the
	// latest DFS checkpoint, and re-executes the lost iterations.
	NodeFailure
	// ProducerFail kills one disaggregated-preprocessing producer at
	// iteration Start: subsequent fetches assigned to it fail over to
	// the surviving pool members (§5's elasticity under churn). Fires
	// once, like NodeFailure. Dual-scope: in a job's Train.Scenario it
	// acts on the job's private producer pool at iteration Start; in a
	// fleet scenario it acts on the fleet-shared producer tier at
	// round Start, degrading every tenant fairly.
	ProducerFail
	// ProducerJoin restores (or brings up) producer Producer at
	// iteration Start — the elastic scale-up counterpart of
	// ProducerFail. Fires once; dual-scope like ProducerFail.
	ProducerJoin
	// WorkloadShift changes the sample-cost distribution mid-run: for
	// the covered iterations every sample's image subsequences are
	// scaled by Factor (resolution by sqrt(Factor), tokens following
	// the patch grid), so encoder/generator work per sample grows while
	// sample identity — and therefore the gradient-accumulation
	// semantics — is a pure function of the scenario and the iteration.
	// This is the data-distribution drift of §2.3 made dynamic; the
	// re-planning controller reacts to it. Applied by the corpus batch
	// front-end (live producer pools own their preprocessing and do not
	// observe scenarios).
	WorkloadShift
	// JobArrive submits one more instance of fleet job spec Job to the
	// multi-tenant fleet runtime's admission queue at round Start — the
	// production stream of training jobs (§7) made explicit. Fleet
	// scope: the trainer ignores it. Fires once.
	JobArrive
	// JobDepart terminates admitted fleet job Job at round Start: its
	// lease is released and its result finalised with the iterations it
	// completed. Fleet scope; fires once.
	JobDepart
	// FleetNodeFail removes node Node from the shared fleet at round
	// Start: every job whose lease places it on that node shrinks — a
	// costed lease reconfiguration — and the node stays out until a
	// matching node-join. Unlike the job-level NodeFailure (which kills
	// one run and restores its checkpoint), this hits every tenant
	// placed on the node. Fleet scope; fires once.
	FleetNodeFail
	// FleetNodeJoin returns failed node Node to the shared fleet at
	// round Start; freed capacity flows to queued and elastic jobs.
	// Fleet scope; fires once.
	FleetNodeJoin
	// PriorityArrive submits one instance of fleet job spec Job at
	// round Start with priority class Class ("" inherits the spec's
	// own class) — a targeted arrival for exercising priority
	// schedulers. Fleet scope; fires once.
	PriorityArrive
	// PreemptStorm submits Count instances of fleet job spec Job at
	// round Start, all at priority class Class (default high): a
	// burst of urgent work that forces a priority scheduler to
	// preempt lower-class tenants. Fleet scope; fires once.
	PreemptStorm
	// Herd submits Count near-identical instances of fleet job spec
	// Job at round Start, each at the spec's own priority class — the
	// thundering-herd admission burst of §7: K tenants whose plan
	// searches share one §4.3 fingerprint, so a coalescing plan cache
	// pays exactly one search. Fleet scope; fires once.
	Herd
)

func (k Kind) String() string {
	switch k {
	case Straggler:
		return "straggler"
	case PreprocessDegrade:
		return "preprocess"
	case LinkCongestion:
		return "congestion"
	case NodeFailure:
		return "failure"
	case ProducerFail:
		return "producer-fail"
	case ProducerJoin:
		return "producer-join"
	case WorkloadShift:
		return "workload-shift"
	case JobArrive:
		return "job-arrive"
	case JobDepart:
		return "job-depart"
	case FleetNodeFail:
		return "node-fail"
	case FleetNodeJoin:
		return "node-join"
	case PriorityArrive:
		return "priority-arrive"
	case PreemptStorm:
		return "preempt-storm"
	case Herd:
		return "herd"
	}
	return fmt.Sprintf("scenario.Kind(%d)", int(k))
}

// fireOnce reports whether the kind fires exactly once, at Start,
// rather than covering an iteration window.
func (k Kind) fireOnce() bool {
	return k == NodeFailure || k == ProducerFail || k == ProducerJoin || k.FleetScope()
}

// FleetScope reports whether the kind addresses the multi-tenant fleet
// runtime (job arrivals/departures, fleet node membership) rather than
// one training run's cost model. The trainer ignores fleet-scope
// events; internal/fleet consumes them through FleetEvents.
func (k Kind) FleetScope() bool {
	switch k {
	case JobArrive, JobDepart, FleetNodeFail, FleetNodeJoin, PriorityArrive, PreemptStorm, Herd:
		return true
	}
	return false
}

// Event is one timed perturbation. Iteration windows are half-open:
// the event affects iterations Start <= i < End (NodeFailure fires
// once, at Start).
type Event struct {
	Kind       Kind
	Start, End int
	// Rank restricts Straggler events to one DP rank; -1 = all ranks.
	Rank int
	// Stage restricts Straggler events to one pipeline stage; -1 = all
	// stages.
	Stage int
	// Factor is the slowdown / scale multiplier, >= 1.
	Factor float64
	// From and Until bound a Straggler within the iteration's
	// pipeline-local time in seconds. Until <= From leaves the window
	// open-ended — it runs from From to the end of the iteration — so
	// the zero value (both zero) covers the whole iteration.
	From, Until float64
	// Downtime is NodeFailure's detection + restart cost in simulated
	// seconds, paid before the checkpoint restore read.
	Downtime float64
	// Producer is the pool-member index a ProducerFail / ProducerJoin
	// event targets.
	Producer int
	// Job is the fleet job index a JobArrive (job-spec index) or
	// JobDepart (admitted-job index) event targets.
	Job int
	// Node is the shared-fleet node index a FleetNodeFail /
	// FleetNodeJoin event targets.
	Node int
	// Class is the priority class a PriorityArrive / PreemptStorm
	// arrival carries: "low", "normal", "high", or "" (PriorityArrive
	// inherits the job spec's class; PreemptStorm's parse default is
	// high). The class names are owned by the fleet scheduler
	// (internal/fleet.ParseClass); validation here pins the same set
	// so a spec that parses cannot fail fleet-side.
	Class string
	// Count is how many instances a PreemptStorm or Herd submits, in
	// [1, MaxStormCount].
	Count int
}

// MaxFactor bounds every slowdown / scale multiplier. Factors beyond
// it are not physically meaningful and only serve to overflow
// downstream cost arithmetic (products of stacked events reaching
// +Inf), so validation rejects them — a bound the fuzzer leans on.
const MaxFactor = 1e9

// MaxStormCount bounds PreemptStorm and Herd fan-out: each instance becomes a
// real fleet tenant, so an absurd count turns one event into a denial
// of service. Real bursts sit far below this.
const MaxStormCount = 256

// Validate checks one event.
func (e Event) Validate() error {
	if e.Kind < Straggler || e.Kind > Herd {
		return fmt.Errorf("scenario: unknown kind %d", int(e.Kind))
	}
	if e.Start < 0 {
		return fmt.Errorf("scenario: %s start %d negative", e.Kind, e.Start)
	}
	if !e.Kind.fireOnce() {
		if e.End <= e.Start {
			return fmt.Errorf("scenario: %s window [%d,%d) empty", e.Kind, e.Start, e.End)
		}
		if e.Factor < 1 || e.Factor > MaxFactor || math.IsNaN(e.Factor) {
			return fmt.Errorf("scenario: %s factor %g must be in [1, %g]", e.Kind, e.Factor, MaxFactor)
		}
		if e.From < 0 || math.IsNaN(e.From) || math.IsInf(e.From, 0) {
			return fmt.Errorf("scenario: %s from %g must be finite and non-negative", e.Kind, e.From)
		}
		if e.Until < 0 || math.IsNaN(e.Until) || math.IsInf(e.Until, 0) {
			return fmt.Errorf("scenario: %s until %g must be finite and non-negative", e.Kind, e.Until)
		}
	}
	if e.Downtime < 0 || math.IsNaN(e.Downtime) || math.IsInf(e.Downtime, 0) {
		return fmt.Errorf("scenario: %s downtime %g must be finite and non-negative", e.Kind, e.Downtime)
	}
	if (e.Kind == ProducerFail || e.Kind == ProducerJoin) && e.Producer < 0 {
		return fmt.Errorf("scenario: %s producer %d negative", e.Kind, e.Producer)
	}
	if (e.Kind == JobArrive || e.Kind == JobDepart || e.Kind == PriorityArrive || e.Kind == PreemptStorm || e.Kind == Herd) && e.Job < 0 {
		return fmt.Errorf("scenario: %s job %d negative", e.Kind, e.Job)
	}
	if e.Kind == PriorityArrive || e.Kind == PreemptStorm {
		switch e.Class {
		case "", "low", "normal", "high":
		default:
			return fmt.Errorf("scenario: %s class %q (want low, normal or high)", e.Kind, e.Class)
		}
	}
	if (e.Kind == PreemptStorm || e.Kind == Herd) && (e.Count < 1 || e.Count > MaxStormCount) {
		return fmt.Errorf("scenario: %s count %d must be in [1, %d]", e.Kind, e.Count, MaxStormCount)
	}
	if (e.Kind == FleetNodeFail || e.Kind == FleetNodeJoin) && e.Node < 0 {
		return fmt.Errorf("scenario: %s node %d negative", e.Kind, e.Node)
	}
	return nil
}

// covers reports whether the event affects iteration i.
func (e Event) covers(i int) bool {
	if e.Kind.fireOnce() {
		return i == e.Start
	}
	return e.Start <= i && i < e.End
}

// Scenario yields the events affecting each iteration. EventsAt must
// be deterministic — same iteration, same events, in the same order —
// and safe for concurrent use.
type Scenario interface {
	Name() string
	EventsAt(iter int) []Event
}

// Schedule is the fixed-event Scenario: an explicit list of timed
// perturbations.
type Schedule struct {
	name   string
	events []Event
}

// New builds a fixed-event schedule. Events are validated eagerly.
func New(name string, events ...Event) (*Schedule, error) {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
	}
	return &Schedule{name: name, events: append([]Event(nil), events...)}, nil
}

// Name implements Scenario.
func (s *Schedule) Name() string { return s.name }

// Events returns a copy of the schedule's full event list, in schedule
// order. The fleet runtime uses it to enumerate fleet-scope events
// eagerly — a fixed schedule, unlike a generator, has a knowable last
// round.
func (s *Schedule) Events() []Event {
	return append([]Event(nil), s.events...)
}

// EventsAt implements Scenario.
func (s *Schedule) EventsAt(iter int) []Event {
	var out []Event
	for _, e := range s.events {
		if e.covers(iter) {
			out = append(out, e)
		}
	}
	return out
}

// RandomStragglers is a seeded straggler generator: each iteration,
// each DP rank independently straggles with probability Prob, slowed
// by a factor drawn uniformly from [1, MaxFactor]. The draw for
// iteration i uses an RNG keyed on (Seed, i), so the sequence is
// reproducible and independent of evaluation order — prefetchers and
// failure-recovery replays see the same stragglers.
type RandomStragglers struct {
	Seed      int64
	Ranks     int
	Prob      float64
	MaxFactor float64
}

// Name implements Scenario.
func (g RandomStragglers) Name() string {
	return fmt.Sprintf("random-stragglers(seed=%d,p=%g,max=%g)", g.Seed, g.Prob, g.MaxFactor)
}

// EventsAt implements Scenario.
func (g RandomStragglers) EventsAt(iter int) []Event {
	// splitmix64-style mix of (seed, iter) so adjacent iterations get
	// decorrelated streams.
	z := uint64(g.Seed)*0x9e3779b97f4a7c15 + uint64(iter+1)*0xbf58476d1ce4e5b9
	z ^= z >> 31
	rng := rand.New(rand.NewSource(int64(z)))
	var out []Event
	for rank := 0; rank < g.Ranks; rank++ {
		p := rng.Float64()
		f := 1 + rng.Float64()*(g.MaxFactor-1)
		if p < g.Prob {
			out = append(out, Event{
				Kind: Straggler, Start: iter, End: iter + 1,
				Rank: rank, Stage: -1, Factor: f,
			})
		}
	}
	return out
}

// Perturbation is a scenario resolved against one iteration: the
// multiplicative factors the trainer applies to its cost components.
type Perturbation struct {
	events []Event
}

// At resolves the scenario at iteration iter; a nil scenario yields
// the steady state.
func At(s Scenario, iter int) Perturbation {
	if s == nil {
		return Perturbation{}
	}
	return Perturbation{events: s.EventsAt(iter)}
}

// Steady reports whether the iteration's cost model is unperturbed.
// Pool-membership events (producer-fail / producer-join) do not count:
// they change which producers serve fetches, not what any iteration
// costs — with a healthy pool the run's results are identical, which
// is the elasticity property the trainer's pool test pins. Fleet-scope
// events do not count either: they address the fleet scheduler, never
// one run's cost model.
func (p Perturbation) Steady() bool {
	for _, e := range p.events {
		switch {
		case e.Kind == ProducerFail || e.Kind == ProducerJoin:
		case e.Kind.FleetScope():
		default:
			return false
		}
	}
	return true
}

// PoolEvents returns the iteration's pool-membership events
// (producer-fail / producer-join), in schedule order.
func (p Perturbation) PoolEvents() []Event {
	var out []Event
	for _, e := range p.events {
		if e.Kind == ProducerFail || e.Kind == ProducerJoin {
			out = append(out, e)
		}
	}
	return out
}

// FleetEvents returns the round's fleet-scope events (job-arrive,
// job-depart, node-fail, node-join, priority-arrive, preempt-storm),
// in schedule order.
func (p Perturbation) FleetEvents() []Event {
	var out []Event
	for _, e := range p.events {
		if e.Kind.FleetScope() {
			out = append(out, e)
		}
	}
	return out
}

// PreprocessFactor returns the combined data-path slowdown (1 = none).
func (p Perturbation) PreprocessFactor() float64 { return p.product(PreprocessDegrade) }

// ShiftFactor returns the combined workload-shift scale (1 = none).
func (p Perturbation) ShiftFactor() float64 { return p.product(WorkloadShift) }

// ShiftBatch applies the iteration's workload shift to a batch,
// returning the input untouched (no allocation) when no shift covers
// the iteration. The transform is per-sample and deterministic, so
// prefetchers and failure-recovery replays observe identical batches.
func (p Perturbation) ShiftBatch(batch []data.Sample) []data.Sample {
	f := p.ShiftFactor()
	if f == 1 {
		return batch
	}
	out := make([]data.Sample, len(batch))
	for i, s := range batch {
		out[i] = ShiftSample(s, f)
	}
	return out
}

// ShiftSample scales a sample's image subsequences by factor: each
// source resolution grows by sqrt(factor) (snapped to the patch grid,
// so token counts track (res/patch)^2 ≈ tokens*factor), modelling a
// corpus whose images got heavier mid-run. Text subsequences, sample
// identity and generation targets are untouched — the shift changes
// what a sample costs, never which samples an iteration trains on.
func ShiftSample(s data.Sample, factor float64) data.Sample {
	if factor == 1 {
		return s
	}
	subs := append([]data.Subsequence(nil), s.Subsequences...)
	edge := math.Sqrt(factor)
	for i, ss := range subs {
		if ss.Modality != data.Image {
			continue
		}
		res := int(math.Round(float64(ss.Resolution) * edge))
		res -= res % model.PatchSize
		if res < model.PatchSize {
			res = model.PatchSize
		}
		subs[i].Resolution = res
		subs[i].Tokens = model.ImageTokens(res)
	}
	s.Subsequences = subs
	return s
}

// P2PFactor returns the combined link-congestion scale (1 = none).
func (p Perturbation) P2PFactor() float64 { return p.product(LinkCongestion) }

// product folds the factors of every covering event of one kind.
// Validation bounds each factor by MaxFactor, but nothing bounds how
// many events may stack on one iteration, so the combined factor is
// clamped to MaxFactor too — the physical bound applies to the total
// slowdown, and the clamp keeps stacked schedules finite.
func (p Perturbation) product(k Kind) float64 {
	f := 1.0
	for _, e := range p.events {
		if e.Kind == k {
			f *= e.Factor
		}
	}
	return math.Min(f, MaxFactor)
}

// Failure returns the iteration's NodeFailure event, if any.
func (p Perturbation) Failure() (Event, bool) {
	for _, e := range p.events {
		if e.Kind == NodeFailure {
			return e, true
		}
	}
	return Event{}, false
}

// RateSchedules builds the per-stage pipeline rate profiles for one DP
// rank, combining every straggler that covers it. Returns nil when the
// rank is unperturbed, so the trainer's fast path stays rate-free.
func (p Perturbation) RateSchedules(rank, stages int) []pipeline.RateSchedule {
	var hits []Event
	for _, e := range p.events {
		if e.Kind == Straggler && (e.Rank < 0 || e.Rank == rank) {
			hits = append(hits, e)
		}
	}
	if len(hits) == 0 {
		return nil
	}
	out := make([]pipeline.RateSchedule, stages)
	for s := 0; s < stages; s++ {
		out[s] = combineRates(hits, s)
	}
	return out
}

// combineRates folds the stage's stragglers into one piecewise-
// constant schedule. Open-ended stragglers (Until <= From, including
// the all-zero default) slow [From, ∞); windowed ones slow only
// [From, Until) of pipeline-local time.
func combineRates(events []Event, stage int) pipeline.RateSchedule {
	type window struct{ from, until, factor float64 }
	var ws []window
	for _, e := range events {
		if e.Stage >= 0 && e.Stage != stage {
			continue
		}
		from, until := e.From, e.Until
		if until <= from {
			until = math.Inf(1)
		}
		ws = append(ws, window{from, until, e.Factor})
	}
	if len(ws) == 0 {
		return nil
	}
	// Breakpoints partition time into intervals of constant combined
	// rate.
	var cuts []float64
	for _, w := range ws {
		cuts = append(cuts, w.from, w.until)
	}
	cuts = append(cuts, math.Inf(1))
	sort.Float64s(cuts)
	var sched pipeline.RateSchedule
	prev := 0.0
	for _, c := range cuts {
		if c <= prev {
			continue
		}
		mid := prev + (c-prev)/2
		if math.IsInf(c, 1) {
			mid = prev + 1
		}
		rate := 1.0
		for _, w := range ws {
			if w.from <= mid && mid < w.until {
				rate /= w.factor
			}
		}
		// Stacked stragglers clamp like product(): a combined slowdown
		// beyond MaxFactor would underflow the rate toward zero and
		// stall the pipeline simulation.
		rate = math.Max(rate, 1/MaxFactor)
		// Merge equal-rate neighbours to keep schedules minimal.
		if n := len(sched); n > 0 && sched[n-1].Rate == rate {
			sched[n-1].Until = c
		} else {
			sched = append(sched, pipeline.RateSeg{Until: c, Rate: rate})
		}
		prev = c
	}
	// Trim a trailing nominal-rate tail: beyond the last segment the
	// simulator runs at nominal speed anyway.
	for n := len(sched); n > 0 && sched[n-1].Rate == 1; n = len(sched) {
		sched = sched[:n-1]
	}
	return sched
}
