package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse builds a Scenario from the CLI grammar of the -scenario flag:
// semicolon-separated events, each `kind:key=value,...`.
//
//	straggler:iters=2-5,rank=0,stage=1,factor=2.5,from=0.1,until=0.4
//	preprocess:iters=2-4,factor=4
//	congestion:iters=1-3,factor=3
//	workload-shift:iters=4-9,factor=3
//	failure:iter=5,downtime=30
//	producer-fail:iter=2,producer=1
//	producer-join:iter=4,producer=1
//	job-arrive:iter=2,job=1
//	job-depart:iter=5,job=0
//	node-fail:iter=3,node=2
//	node-join:iter=6,node=2
//	priority-arrive:iter=2,job=1,class=high
//	preempt-storm:iter=3,job=0,class=high,count=3
//	herd:iter=0,job=0,count=8
//	random-stragglers:seed=7,ranks=8,prob=0.3,max=3
//
// Iteration windows are inclusive (`iters=2-5` covers 2,3,4,5);
// `iter=N` is shorthand for a single iteration (and the only form the
// fire-once kinds — failure, producer-fail, producer-join, and the
// fleet-scope job-arrive / job-depart / node-fail / node-join /
// priority-arrive / preempt-storm / herd — accept; for fleet kinds `iter` is
// a fleet scheduling round, and producer-fail / producer-join are
// dual-scope: in a fleet scenario they address the fleet-shared
// producer tier and `iter` is likewise a round). Each kind accepts only the keys that
// affect it: `rank`, `stage`, `from` and `until` belong to straggler;
// `factor` to the windowed kinds; `downtime` to failure; `producer`
// to producer-fail / producer-join; `job` to the job arrival and
// departure kinds; `node` to node-fail / node-join; `class` to
// priority-arrive / preempt-storm; `count` to preempt-storm and herd.
// Duplicate keys are rejected. `rank`/`stage` default to -1 (all);
// `factor` defaults to 2; failure `downtime` defaults to 30 simulated
// seconds; `producer`, `job` and `node` default to 0;
// priority-arrive `class` defaults to the job spec's own class while
// preempt-storm defaults to high with `count` 2; herd inherits the
// spec's class and also defaults `count` to 2.
// `random-stragglers` must be the only event in its spec — it is a
// generator, not a timed event.
//
// Every parse error names the offending event: `event %d: %q` with the
// event's zero-based position in the spec and its raw text.
func Parse(spec string) (Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	var parts []string
	for _, part := range strings.Split(spec, ";") {
		if part = strings.TrimSpace(part); part != "" {
			parts = append(parts, part)
		}
	}
	var events []Event
	for i, part := range parts {
		kind, kvs, err := splitEvent(part)
		if err != nil {
			return nil, eventErr(i, part, err)
		}
		if kind == "random-stragglers" {
			if len(parts) > 1 {
				return nil, eventErr(i, part, fmt.Errorf("random-stragglers cannot be combined with other events"))
			}
			g, err := parseRandomStragglers(kvs)
			if err != nil {
				return nil, eventErr(i, part, err)
			}
			return g, nil
		}
		e, err := parseEvent(kind, kvs)
		if err != nil {
			return nil, eventErr(i, part, err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("scenario: no events in %q", spec)
	}
	return New(spec, events...)
}

// eventErr stamps every parse failure with the offending event's index
// and raw token, so multi-event specs pinpoint which clause broke.
func eventErr(i int, part string, err error) error {
	return fmt.Errorf("scenario: event %d: %q: %w", i, part, err)
}

func splitEvent(part string) (kind string, kvs map[string]string, err error) {
	kind, rest, found := strings.Cut(part, ":")
	kind = strings.TrimSpace(kind)
	kvs = map[string]string{}
	if !found || strings.TrimSpace(rest) == "" {
		return kind, kvs, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("malformed key=value %q", kv)
		}
		k = strings.TrimSpace(k)
		if _, dup := kvs[k]; dup {
			return "", nil, fmt.Errorf("duplicate key %q", k)
		}
		kvs[k] = strings.TrimSpace(v)
	}
	return kind, kvs, nil
}

// eventKeys lists, per kind, the keys beyond the iteration window that
// the kind actually consumes. Keys outside the list are rejected
// instead of silently ignored: an event that parses must mean what it
// says.
var eventKeys = map[Kind]string{
	Straggler:         "rank stage factor from until",
	PreprocessDegrade: "factor",
	LinkCongestion:    "factor",
	WorkloadShift:     "factor",
	NodeFailure:       "downtime",
	ProducerFail:      "producer",
	ProducerJoin:      "producer",
	JobArrive:         "job",
	JobDepart:         "job",
	FleetNodeFail:     "node",
	FleetNodeJoin:     "node",
	PriorityArrive:    "job class",
	PreemptStorm:      "job class count",
	Herd:              "job count",
}

func keyAllowed(k Kind, key string) bool {
	for _, a := range strings.Fields(eventKeys[k]) {
		if a == key {
			return true
		}
	}
	return false
}

func parseEvent(kind string, kvs map[string]string) (Event, error) {
	e := Event{Rank: -1, Stage: -1, Factor: 2}
	switch kind {
	case "straggler":
		e.Kind = Straggler
	case "preprocess", "preproc":
		e.Kind = PreprocessDegrade
	case "congestion":
		e.Kind = LinkCongestion
	case "workload-shift":
		e.Kind = WorkloadShift
	case "failure":
		e.Kind = NodeFailure
		e.Downtime = 30
	case "producer-fail":
		e.Kind = ProducerFail
	case "producer-join":
		e.Kind = ProducerJoin
	case "job-arrive":
		e.Kind = JobArrive
	case "job-depart":
		e.Kind = JobDepart
	case "node-fail":
		e.Kind = FleetNodeFail
	case "node-join":
		e.Kind = FleetNodeJoin
	case "priority-arrive":
		e.Kind = PriorityArrive
	case "preempt-storm":
		e.Kind = PreemptStorm
		e.Class = "high"
		e.Count = 2
	case "herd":
		e.Kind = Herd
		e.Count = 2
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", kind)
	}
	haveIter, haveRange := false, false
	for k, v := range kvs {
		var err error
		switch k {
		case "iter":
			e.Start, err = strconv.Atoi(v)
			e.End = e.Start + 1
			haveIter = true
		case "iters":
			if e.Kind.fireOnce() {
				return Event{}, fmt.Errorf("%s fires once: use iter=N, not a window", kind)
			}
			lo, hi, ok := strings.Cut(v, "-")
			if !ok {
				return Event{}, fmt.Errorf("iters wants lo-hi, got %q", v)
			}
			if e.Start, err = strconv.Atoi(lo); err == nil {
				e.End, err = strconv.Atoi(hi)
				e.End++ // inclusive upper bound
			}
			haveRange = true
		case "rank":
			e.Rank, err = strconv.Atoi(v)
		case "stage":
			e.Stage, err = strconv.Atoi(v)
		case "factor":
			e.Factor, err = strconv.ParseFloat(v, 64)
		case "from":
			e.From, err = strconv.ParseFloat(v, 64)
		case "until":
			e.Until, err = strconv.ParseFloat(v, 64)
		case "downtime":
			e.Downtime, err = strconv.ParseFloat(v, 64)
		case "producer":
			e.Producer, err = strconv.Atoi(v)
		case "job":
			e.Job, err = strconv.Atoi(v)
		case "node":
			e.Node, err = strconv.Atoi(v)
		case "class":
			e.Class = v
		case "count":
			e.Count, err = strconv.Atoi(v)
		default:
			return Event{}, fmt.Errorf("unknown key %q for %s", k, kind)
		}
		if err != nil {
			return Event{}, fmt.Errorf("bad %s=%q: %w", k, v, err)
		}
		if k != "iter" && k != "iters" && !keyAllowed(e.Kind, k) {
			return Event{}, fmt.Errorf("key %q does not apply to %s (allowed: iter/iters %s)", k, kind, eventKeys[e.Kind])
		}
	}
	// iter and iters are exclusive: with both present, map iteration
	// order would decide the window — a nondeterministic parse.
	if haveIter && haveRange {
		return Event{}, fmt.Errorf("%s specifies both iter and iters", kind)
	}
	if !haveIter && !haveRange {
		return Event{}, fmt.Errorf("%s needs iter=N or iters=lo-hi", kind)
	}
	return e, e.Validate()
}

// maxGeneratorRanks bounds random-stragglers fan-out: each covered
// iteration draws per rank, so an absurd rank count turns EventsAt
// into a denial of service. Real DP degrees sit far below this.
const maxGeneratorRanks = 1 << 16

func parseRandomStragglers(kvs map[string]string) (Scenario, error) {
	g := RandomStragglers{Seed: 1, Ranks: 1, Prob: 0.2, MaxFactor: 3}
	for k, v := range kvs {
		var err error
		switch k {
		case "seed":
			g.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ranks":
			g.Ranks, err = strconv.Atoi(v)
		case "prob":
			g.Prob, err = strconv.ParseFloat(v, 64)
		case "max":
			g.MaxFactor, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("unknown key %q for random-stragglers", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bad %s=%q: %w", k, v, err)
		}
	}
	switch {
	case g.Ranks < 1 || g.Ranks > maxGeneratorRanks:
		return nil, fmt.Errorf("random-stragglers wants ranks in [1, %d], got %d", maxGeneratorRanks, g.Ranks)
	case math.IsNaN(g.Prob) || g.Prob < 0 || g.Prob > 1:
		return nil, fmt.Errorf("random-stragglers wants prob in [0,1], got %g", g.Prob)
	case math.IsNaN(g.MaxFactor) || g.MaxFactor < 1 || g.MaxFactor > MaxFactor:
		return nil, fmt.Errorf("random-stragglers wants max in [1, %g], got %g", MaxFactor, g.MaxFactor)
	}
	return g, nil
}
