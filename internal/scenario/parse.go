package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Scenario from the CLI grammar of the -scenario flag:
// semicolon-separated events, each `kind:key=value,...`.
//
//	straggler:iters=2-5,rank=0,stage=1,factor=2.5,from=0.1,until=0.4
//	preprocess:iters=2-4,factor=4
//	congestion:iters=1-3,factor=3
//	failure:iter=5,downtime=30
//	producer-fail:iter=2,producer=1
//	producer-join:iter=4,producer=1
//	random-stragglers:seed=7,ranks=8,prob=0.3,max=3
//
// Iteration windows are inclusive (`iters=2-5` covers 2,3,4,5);
// `iter=N` is shorthand for a single iteration. `rank`/`stage` default
// to -1 (all); `factor` defaults to 2; failure `downtime` defaults to
// 30 simulated seconds; `producer` defaults to 0. `random-stragglers`
// must be the only event in its spec — it is a generator, not a timed
// event.
func Parse(spec string) (Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	var parts []string
	for _, part := range strings.Split(spec, ";") {
		if part = strings.TrimSpace(part); part != "" {
			parts = append(parts, part)
		}
	}
	var events []Event
	for _, part := range parts {
		kind, kvs, err := splitEvent(part)
		if err != nil {
			return nil, err
		}
		if kind == "random-stragglers" {
			if len(parts) > 1 {
				return nil, fmt.Errorf("scenario: random-stragglers cannot be combined with other events")
			}
			return parseRandomStragglers(kvs)
		}
		e, err := parseEvent(kind, kvs)
		if err != nil {
			return nil, fmt.Errorf("scenario: %q: %w", part, err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("scenario: no events in %q", spec)
	}
	return New(spec, events...)
}

func splitEvent(part string) (kind string, kvs map[string]string, err error) {
	kind, rest, found := strings.Cut(part, ":")
	kind = strings.TrimSpace(kind)
	kvs = map[string]string{}
	if !found || strings.TrimSpace(rest) == "" {
		return kind, kvs, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("scenario: malformed key=value %q in %q", kv, part)
		}
		kvs[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kind, kvs, nil
}

func parseEvent(kind string, kvs map[string]string) (Event, error) {
	e := Event{Rank: -1, Stage: -1, Factor: 2}
	switch kind {
	case "straggler":
		e.Kind = Straggler
	case "preprocess", "preproc":
		e.Kind = PreprocessDegrade
	case "congestion":
		e.Kind = LinkCongestion
	case "failure":
		e.Kind = NodeFailure
		e.Downtime = 30
	case "producer-fail":
		e.Kind = ProducerFail
	case "producer-join":
		e.Kind = ProducerJoin
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", kind)
	}
	haveIter, haveRange := false, false
	for k, v := range kvs {
		var err error
		switch k {
		case "iter":
			e.Start, err = strconv.Atoi(v)
			e.End = e.Start + 1
			haveIter = true
		case "iters":
			lo, hi, ok := strings.Cut(v, "-")
			if !ok {
				return Event{}, fmt.Errorf("iters wants lo-hi, got %q", v)
			}
			if e.Start, err = strconv.Atoi(lo); err == nil {
				e.End, err = strconv.Atoi(hi)
				e.End++ // inclusive upper bound
			}
			haveRange = true
		case "rank":
			e.Rank, err = strconv.Atoi(v)
		case "stage":
			e.Stage, err = strconv.Atoi(v)
		case "factor":
			e.Factor, err = strconv.ParseFloat(v, 64)
		case "from":
			e.From, err = strconv.ParseFloat(v, 64)
		case "until":
			e.Until, err = strconv.ParseFloat(v, 64)
		case "downtime":
			e.Downtime, err = strconv.ParseFloat(v, 64)
		case "producer":
			if e.Kind != ProducerFail && e.Kind != ProducerJoin {
				return Event{}, fmt.Errorf("producer only applies to producer-fail/producer-join, not %s", kind)
			}
			e.Producer, err = strconv.Atoi(v)
		default:
			return Event{}, fmt.Errorf("unknown key %q for %s", k, kind)
		}
		if err != nil {
			return Event{}, fmt.Errorf("bad %s=%q: %w", k, v, err)
		}
	}
	// iter and iters are exclusive: with both present, map iteration
	// order would decide the window — a nondeterministic parse.
	if haveIter && haveRange {
		return Event{}, fmt.Errorf("%s specifies both iter and iters", kind)
	}
	if !haveIter && !haveRange {
		return Event{}, fmt.Errorf("%s needs iter=N or iters=lo-hi", kind)
	}
	return e, e.Validate()
}

func parseRandomStragglers(kvs map[string]string) (Scenario, error) {
	g := RandomStragglers{Seed: 1, Ranks: 1, Prob: 0.2, MaxFactor: 3}
	for k, v := range kvs {
		var err error
		switch k {
		case "seed":
			g.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ranks":
			g.Ranks, err = strconv.Atoi(v)
		case "prob":
			g.Prob, err = strconv.ParseFloat(v, 64)
		case "max":
			g.MaxFactor, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("scenario: unknown key %q for random-stragglers", k)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: bad %s=%q: %w", k, v, err)
		}
	}
	if g.Ranks < 1 || g.Prob < 0 || g.Prob > 1 || g.MaxFactor < 1 {
		return nil, fmt.Errorf("scenario: random-stragglers wants ranks>=1, prob in [0,1], max>=1")
	}
	return g, nil
}
