package parallel

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"disttrain/internal/cluster"
)

func mustUnit(t *testing.T, name string, cfg Config, first int) *Unit {
	t.Helper()
	u, err := NewUnit(name, cfg, cluster.Slice{First: first, Count: cfg.GPUs()}, 8)
	if err != nil {
		t.Fatalf("NewUnit: %v", err)
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	good := Plain(4, 2, 3)
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{TP: 0, PP: 1, DP: 1, VPP: 1, EP: 1},
		{TP: 16, PP: 1, DP: 1, VPP: 1, EP: 1}, // TP > node
		{TP: 3, PP: 1, DP: 1, VPP: 1, EP: 1},  // TP does not divide 8
		{TP: 1, PP: 1, DP: 1, VPP: 0, EP: 1},
		{TP: 1, PP: 1, DP: 1, VPP: 1, EP: 0},
	}
	for i, c := range bad {
		if err := c.Validate(8); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestTPSizes(t *testing.T) {
	if got := TPSizes(8); !reflect.DeepEqual(got, []int{1, 2, 4, 8}) {
		t.Errorf("TPSizes(8) = %v", got)
	}
}

func TestModelParallelWidth(t *testing.T) {
	c := Plain(4, 1, 1)
	if c.ModelParallelWidth() != 4 {
		t.Error("TP width expected")
	}
	c.EP = 16
	if c.ModelParallelWidth() != 16 {
		t.Error("EP should supersede TP when active (§4.1)")
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	u := mustUnit(t, "llm", Plain(4, 3, 2), 16)
	seen := map[int]bool{}
	for pp := 0; pp < 3; pp++ {
		for dp := 0; dp < 2; dp++ {
			for tp := 0; tp < 4; tp++ {
				c := Coord{DP: dp, PP: pp, TP: tp}
				r := u.Rank(c)
				if seen[r] {
					t.Fatalf("rank %d assigned twice", r)
				}
				seen[r] = true
				got, err := u.CoordOf(r)
				if err != nil {
					t.Fatal(err)
				}
				if got != c {
					t.Fatalf("round trip %v -> %d -> %v", c, r, got)
				}
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d ranks, want 24", len(seen))
	}
	if _, err := u.CoordOf(15); err == nil {
		t.Error("CoordOf should reject ranks outside the slice")
	}
	if _, err := u.CoordOf(40); err == nil {
		t.Error("CoordOf should reject ranks past the slice")
	}
}

func TestTPGroupsStayWithinNodes(t *testing.T) {
	// TP innermost means a TP<=8 group never crosses a node boundary
	// when the slice starts on a node boundary.
	u := mustUnit(t, "llm", Plain(8, 2, 4), 0)
	cl := cluster.Production(16)
	for pp := 0; pp < 2; pp++ {
		for dp := 0; dp < 4; dp++ {
			g := u.TPGroup(dp, pp)
			for _, r := range g[1:] {
				if !cl.SameNode(g[0], r) {
					t.Fatalf("TP group %v crosses nodes", g)
				}
			}
		}
	}
}

func TestGroupShapes(t *testing.T) {
	u := mustUnit(t, "llm", Plain(2, 3, 4), 8)
	if g := u.TPGroup(1, 2); len(g) != 2 {
		t.Errorf("TP group size %d", len(g))
	}
	if g := u.DPGroup(0, 1); len(g) != 4 {
		t.Errorf("DP group size %d", len(g))
	}
	if g := u.PPGroup(1, 3); len(g) != 3 {
		t.Errorf("PP group size %d", len(g))
	}
	stage := u.StageRanks(0)
	if len(stage) != 8 {
		t.Errorf("stage size %d, want DP*TP=8", len(stage))
	}
	// Stage 0 must be the lowest ranks (PP outermost).
	sorted := append([]int(nil), stage...)
	sort.Ints(sorted)
	if sorted[0] != 8 || sorted[len(sorted)-1] != 15 {
		t.Errorf("stage 0 ranks = %v, want [8,16)", sorted)
	}
	if !reflect.DeepEqual(u.FirstStageRanks(), u.StageRanks(0)) {
		t.Error("FirstStageRanks mismatch")
	}
	if !reflect.DeepEqual(u.LastStageRanks(), u.StageRanks(2)) {
		t.Error("LastStageRanks mismatch")
	}
}

func TestNewUnitRejectsMismatchedSlice(t *testing.T) {
	_, err := NewUnit("x", Plain(2, 2, 2), cluster.Slice{First: 0, Count: 7}, 8)
	if err == nil {
		t.Error("slice/config size mismatch accepted")
	}
}

func TestBrokerCountIsGCD(t *testing.T) {
	up := mustUnit(t, "enc", Plain(1, 1, 6), 0)
	down := mustUnit(t, "llm", Plain(2, 1, 4), 6)
	if got := BrokerCount(up, down); got != 2 {
		t.Errorf("BrokerCount = %d, want gcd(6,4)=2", got)
	}
}

func TestAssignBrokersCoversAllDPRanks(t *testing.T) {
	up := mustUnit(t, "enc", Plain(1, 1, 6), 0)
	down := mustUnit(t, "llm", Plain(1, 1, 4), 6)
	a := AssignBrokers(up, down)
	if a.Brokers != 2 {
		t.Fatalf("brokers = %d", a.Brokers)
	}
	var upAll, downAll []int
	for b := 0; b < a.Brokers; b++ {
		upAll = append(upAll, a.Upstream[b]...)
		downAll = append(downAll, a.Downstream[b]...)
		// Per-broker load is balanced within one unit.
		if len(a.Upstream[b]) != 3 {
			t.Errorf("broker %d upstream load %d, want 3", b, len(a.Upstream[b]))
		}
		if len(a.Downstream[b]) != 2 {
			t.Errorf("broker %d downstream load %d, want 2", b, len(a.Downstream[b]))
		}
	}
	sort.Ints(upAll)
	sort.Ints(downAll)
	if !reflect.DeepEqual(upAll, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("upstream coverage = %v", upAll)
	}
	if !reflect.DeepEqual(downAll, []int{0, 1, 2, 3}) {
		t.Errorf("downstream coverage = %v", downAll)
	}
}

// Property: for any valid configuration, ranks form a bijection over
// the slice.
func TestRankBijection(t *testing.T) {
	f := func(tpExp, pp, dp uint8) bool {
		tp := 1 << (tpExp % 4) // 1,2,4,8
		cfg := Plain(tp, int(pp%4)+1, int(dp%5)+1)
		u, err := NewUnit("u", cfg, cluster.Slice{First: 0, Count: cfg.GPUs()}, 8)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for p := 0; p < cfg.PP; p++ {
			for d := 0; d < cfg.DP; d++ {
				for tt := 0; tt < cfg.TP; tt++ {
					r := u.Rank(Coord{DP: d, PP: p, TP: tt})
					if r < 0 || r >= cfg.GPUs() || seen[r] {
						return false
					}
					seen[r] = true
				}
			}
		}
		return len(seen) == cfg.GPUs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: broker assignment always covers every DP rank exactly once
// on both sides.
func TestAssignBrokersPartition(t *testing.T) {
	f := func(upDP, downDP uint8) bool {
		u := int(upDP%12) + 1
		d := int(downDP%12) + 1
		up, err1 := NewUnit("u", Plain(1, 1, u), cluster.Slice{First: 0, Count: u}, 8)
		down, err2 := NewUnit("d", Plain(1, 1, d), cluster.Slice{First: u, Count: d}, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		a := AssignBrokers(up, down)
		seenUp := map[int]int{}
		seenDown := map[int]int{}
		for b := 0; b < a.Brokers; b++ {
			for _, r := range a.Upstream[b] {
				seenUp[r]++
			}
			for _, r := range a.Downstream[b] {
				seenDown[r]++
			}
		}
		if len(seenUp) != u || len(seenDown) != d {
			return false
		}
		for _, c := range seenUp {
			if c != 1 {
				return false
			}
		}
		for _, c := range seenDown {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
