// Package parallel models the distributed-training parallelism
// strategies of the paper: tensor (TP), pipeline (PP), data (DP) and
// virtual-pipeline (VPP) parallelism, plus the sequence (SP) and expert
// (EP) extensions of §4.1. Its central type is the Unit — the paper's
// "parallelism unit" — a group of pipeline stages that owns its own
// DP/TP configuration and communication groups, connected to adjacent
// units only through communication brokers.
package parallel

import (
	"fmt"

	"disttrain/internal/cluster"
)

// Config is a parallelism strategy for one module.
type Config struct {
	// TP is tensor-parallel size; confined to {1,2,4,8} on 8-GPU nodes
	// (§4.3).
	TP int
	// PP is pipeline-parallel size (number of stages in this unit).
	PP int
	// DP is data-parallel size.
	DP int
	// VPP is virtual-pipeline (interleaved 1F1B) size; 1 disables it.
	VPP int
	// SP enables sequence parallelism inside the unit (§4.1): the
	// sequence dimension is split across the TP group; it changes
	// communication shape, not GPU count.
	SP bool
	// EP is expert-parallel size for MoE backbones; 1 disables it. EP
	// and TP both parallelise within a layer, so formulas involving TP
	// remain valid with TP replaced by EP (§4.1).
	EP int
}

// Plain returns a minimal configuration with the given sizes and no
// VPP/SP/EP extensions.
func Plain(tp, pp, dp int) Config { return Config{TP: tp, PP: pp, DP: dp, VPP: 1, EP: 1} }

// GPUs returns the GPU count the configuration occupies.
func (c Config) GPUs() int { return c.TP * c.PP * c.DP }

// ModelParallelWidth returns the within-layer parallel degree: EP when
// expert parallelism is active, TP otherwise (§4.1).
func (c Config) ModelParallelWidth() int {
	if c.EP > 1 {
		return c.EP
	}
	return c.TP
}

// Validate reports whether the configuration is usable on nodes with
// the given GPU count.
func (c Config) Validate(gpusPerNode int) error {
	switch {
	case c.TP < 1 || c.PP < 1 || c.DP < 1:
		return fmt.Errorf("parallel: non-positive sizes in %+v", c)
	case c.VPP < 1:
		return fmt.Errorf("parallel: VPP %d must be >= 1", c.VPP)
	case c.EP < 1:
		return fmt.Errorf("parallel: EP %d must be >= 1", c.EP)
	case gpusPerNode > 0 && c.TP > gpusPerNode:
		return fmt.Errorf("parallel: TP %d exceeds node size %d", c.TP, gpusPerNode)
	case gpusPerNode > 0 && gpusPerNode%c.TP != 0:
		return fmt.Errorf("parallel: TP %d does not divide node size %d", c.TP, gpusPerNode)
	}
	return nil
}

func (c Config) String() string {
	s := fmt.Sprintf("TP=%d PP=%d DP=%d", c.TP, c.PP, c.DP)
	if c.VPP > 1 {
		s += fmt.Sprintf(" VPP=%d", c.VPP)
	}
	if c.SP {
		s += " SP"
	}
	if c.EP > 1 {
		s += fmt.Sprintf(" EP=%d", c.EP)
	}
	return s
}

// TPSizes enumerates the tensor-parallel sizes considered by the
// adaptive orchestration algorithm on a node of the given size (§4.3:
// "[1, 2, 4, 8] on an NVIDIA GPU node with 8 GPUs").
func TPSizes(gpusPerNode int) []int {
	var out []int
	for tp := 1; tp <= gpusPerNode; tp *= 2 {
		out = append(out, tp)
	}
	return out
}

// Coord locates one rank inside a unit's (dp, pp, tp) grid.
type Coord struct{ DP, PP, TP int }

// Unit is the paper's parallelism unit (§4.1): one or more PP stages
// with their own DP and TP strategy and a dedicated communication
// group. The rank layout places TP innermost (so TP groups sit inside a
// node), DP next, PP outermost — the Megatron-LM ordering.
type Unit struct {
	Name   string
	Config Config
	// Slice is the contiguous range of global ranks the unit occupies.
	Slice cluster.Slice
}

// NewUnit validates and creates a parallelism unit over a rank slice.
func NewUnit(name string, cfg Config, slice cluster.Slice, gpusPerNode int) (*Unit, error) {
	if err := cfg.Validate(gpusPerNode); err != nil {
		return nil, fmt.Errorf("unit %s: %w", name, err)
	}
	if cfg.GPUs() != slice.Count {
		return nil, fmt.Errorf("unit %s: config needs %d GPUs, slice has %d", name, cfg.GPUs(), slice.Count)
	}
	return &Unit{Name: name, Config: cfg, Slice: slice}, nil
}

// Rank converts a grid coordinate to a global rank.
func (u *Unit) Rank(c Coord) int {
	cfg := u.Config
	return u.Slice.First + (c.PP*cfg.DP+c.DP)*cfg.TP + c.TP
}

// CoordOf converts a global rank to its grid coordinate.
func (u *Unit) CoordOf(rank int) (Coord, error) {
	if !u.Slice.Contains(rank) {
		return Coord{}, fmt.Errorf("unit %s: rank %d outside %v", u.Name, rank, u.Slice)
	}
	local := rank - u.Slice.First
	cfg := u.Config
	return Coord{
		TP: local % cfg.TP,
		DP: (local / cfg.TP) % cfg.DP,
		PP: local / (cfg.TP * cfg.DP),
	}, nil
}

// TPGroup returns the global ranks of one tensor-parallel group.
func (u *Unit) TPGroup(dp, pp int) []int {
	out := make([]int, u.Config.TP)
	for t := range out {
		out[t] = u.Rank(Coord{DP: dp, PP: pp, TP: t})
	}
	return out
}

// DPGroup returns the global ranks that all-reduce gradients together:
// same pp stage, same tp index, across DP.
func (u *Unit) DPGroup(tp, pp int) []int {
	out := make([]int, u.Config.DP)
	for d := range out {
		out[d] = u.Rank(Coord{DP: d, PP: pp, TP: tp})
	}
	return out
}

// PPGroup returns the global ranks forming one pipeline: same dp and tp
// index across stages.
func (u *Unit) PPGroup(tp, dp int) []int {
	out := make([]int, u.Config.PP)
	for p := range out {
		out[p] = u.Rank(Coord{DP: dp, PP: p, TP: tp})
	}
	return out
}

// StageRanks returns all ranks of one pipeline stage.
func (u *Unit) StageRanks(pp int) []int {
	cfg := u.Config
	out := make([]int, 0, cfg.DP*cfg.TP)
	for d := 0; d < cfg.DP; d++ {
		for t := 0; t < cfg.TP; t++ {
			out = append(out, u.Rank(Coord{DP: d, PP: pp, TP: t}))
		}
	}
	return out
}

// FirstStageRanks and LastStageRanks expose the unit's boundary stages,
// where communication brokers attach (§6).
func (u *Unit) FirstStageRanks() []int { return u.StageRanks(0) }
func (u *Unit) LastStageRanks() []int  { return u.StageRanks(u.Config.PP - 1) }

// BrokerCount returns the number of communication brokers deployed
// between an upstream and a downstream unit: the greatest common
// divisor of their DP sizes, so total inter-unit bandwidth scales with
// the workload while preserving per-broker data order (§6).
func BrokerCount(upstream, downstream *Unit) int {
	return gcd(upstream.Config.DP, downstream.Config.DP)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// BrokerAssignment maps DP ranks of adjacent units onto brokers: broker
// b serves upstream DP ranks u with u % brokers == b and downstream DP
// ranks d with d % brokers == b. The modulo assignment keeps every
// broker's load within one microbatch of even.
type BrokerAssignment struct {
	Brokers    int
	Upstream   [][]int // broker -> upstream DP ranks
	Downstream [][]int // broker -> downstream DP ranks
}

// AssignBrokers computes the broker fan-in/fan-out between two units.
func AssignBrokers(upstream, downstream *Unit) BrokerAssignment {
	n := BrokerCount(upstream, downstream)
	a := BrokerAssignment{
		Brokers:    n,
		Upstream:   make([][]int, n),
		Downstream: make([][]int, n),
	}
	for d := 0; d < upstream.Config.DP; d++ {
		a.Upstream[d%n] = append(a.Upstream[d%n], d)
	}
	for d := 0; d < downstream.Config.DP; d++ {
		a.Downstream[d%n] = append(a.Downstream[d%n], d)
	}
	return a
}
