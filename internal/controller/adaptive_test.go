package controller

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"disttrain/internal/metrics"
	"disttrain/internal/model"
	"disttrain/internal/scenario"
	"disttrain/internal/trainer"
)

func runConfig(t *testing.T, cfg trainer.Config, iters int) *trainer.Result {
	t.Helper()
	rt, err := trainer.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveReplanEndToEnd is the acceptance path: a workload-shift
// scenario drifts the sample-cost distribution mid-run; the controller
// detects it, re-runs the §4.3 search concurrently with training, and
// switches plans at an iteration boundary. The adaptive run must beat
// the controller-free run on mean iteration time while producing
// exactly the same gradient sums — plans permute placement and order,
// never the commutative accumulation.
func TestAdaptiveReplanEndToEnd(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 32)
	plan := planFor(t, spec)
	sc, err := scenario.Parse("workload-shift:iters=2-13,factor=3")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 14

	base := trainer.DistTrainConfig(spec, plan, corpus)
	base.GradientDim = 8
	base.Scenario = sc

	off := runConfig(t, base, iters)

	ctrl, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus),
		Threshold: 0.5, Window: 2, ApplyDelay: 1, MaxReplans: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Controller = ctrl
	on := runConfig(t, adaptive, iters)

	if on.PlanSwitches < 1 {
		t.Fatalf("controller applied %d plan switches, want >= 1 (triggers: %d, reports: %+v)",
			on.PlanSwitches, ctrl.Triggers(), ctrl.Reports())
	}
	if len(on.Replans) != on.PlanSwitches {
		t.Errorf("Replans records %d switches, counter says %d", len(on.Replans), on.PlanSwitches)
	}
	for _, rp := range on.Replans {
		if rp.Downtime <= 0 {
			t.Errorf("plan switch at %d was free: reconfiguration must be costed", rp.AppliedAt)
		}
	}
	if on.DowntimeSeconds <= 0 {
		t.Error("reconfiguration downtime not accounted in DowntimeSeconds")
	}
	if on.MeanIterTime >= off.MeanIterTime {
		t.Errorf("adaptive run did not beat the static plan: %.4fs vs %.4fs (replans: %+v)",
			on.MeanIterTime, off.MeanIterTime, on.Replans)
	}
	if !reflect.DeepEqual(on.GradientSum, off.GradientSum) {
		t.Errorf("re-planned run changed the gradient sums:\non  %v\noff %v", on.GradientSum, off.GradientSum)
	}
}

// TestControllerSteadyByteIdentical: with drift below threshold the
// controller must be invisible — the Result is byte-identical to a
// controller-free run.
func TestControllerSteadyByteIdentical(t *testing.T) {
	spec, corpus := buildSpec(t, 12, 96)
	plan := planFor(t, spec)

	mk := func() trainer.Config {
		cfg := trainer.DistTrainConfig(spec, plan, corpus)
		cfg.GradientDim = 8
		return cfg
	}
	want := runConfig(t, mk(), 6)

	ctrl, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Threshold: 0.5, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Controller = ctrl
	got := runConfig(t, cfg, 6)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("steady controller run diverged from controller-free run:\ngot  %+v\nwant %+v", got, want)
	}
	if ctrl.Triggers() != 0 {
		t.Errorf("steady run triggered %d searches", ctrl.Triggers())
	}
}

// TestReconfigurationPreservesGradients is the reconfiguration
// semantics property test: for random scenario factors, windows, seeds
// and worker counts, a mid-run re-planned run must produce gradient
// sums identical to the uninterrupted reference — the §5 commutativity
// argument extended to plan switches — at workers 1, 4 and GOMAXPROCS
// (the CI race gate runs this under -race).
func TestReconfigurationPreservesGradients(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 32)
	plan := planFor(t, spec)

	cases := 4
	if testing.Short() {
		cases = 2
	}
	rng := rand.New(rand.NewSource(41))
	for ci := 0; ci < cases; ci++ {
		start := 1 + rng.Intn(3)
		factor := 2 + rng.Float64()*2
		iters := 8 + rng.Intn(4)
		dim := 4 + rng.Intn(8)
		sc, err := scenario.Parse(fmt.Sprintf("workload-shift:iters=%d-%d,factor=%.2f", start, iters, factor))
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("shift@%d x%.2f iters=%d dim=%d", start, factor, iters, dim)
		t.Run(name, func(t *testing.T) {
			mk := func() trainer.Config {
				cfg := trainer.DistTrainConfig(spec, plan, corpus)
				cfg.Scenario = sc
				cfg.GradientDim = dim
				return cfg
			}
			ref := runConfig(t, mk(), iters) // uninterrupted reference
			if ref.GradientSum == nil {
				t.Fatal("reference run produced no gradient sums")
			}
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				ctrl, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus),
					Threshold: 0.4, Window: 2, ApplyDelay: 1, MaxReplans: 2, Cooldown: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				cfg := mk()
				cfg.Parallelism = workers
				cfg.Controller = ctrl
				got := runConfig(t, cfg, iters)
				if got.PlanSwitches < 1 {
					t.Fatalf("workers=%d: no plan switch happened, property not exercised (reports %+v)",
						workers, ctrl.Reports())
				}
				if !reflect.DeepEqual(got.GradientSum, ref.GradientSum) {
					t.Errorf("workers=%d: gradient sums diverged after %d plan switches:\ngot  %v\nwant %v",
						workers, got.PlanSwitches, got.GradientSum, ref.GradientSum)
				}
			}
		})
	}
}

// TestGoldenTraceDeterminism pins trace determinism: two runs with the
// same seed, scenario script and parallelism emit byte-identical
// Chrome-trace JSON — including the controller's new replan /
// reconfigure events. The format carries only simulated timestamps (no
// wall-clock fields), so no normalisation is needed; byte equality is
// the whole check.
func TestGoldenTraceDeterminism(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 32)
	plan := planFor(t, spec)
	const spec2 = "workload-shift:iters=2-9,factor=3; straggler:iters=1-2,rank=0,factor=2"
	sc, err := scenario.Parse(spec2)
	if err != nil {
		t.Fatal(err)
	}

	run := func() []byte {
		ctrl, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Threshold: 0.5, Window: 2, MaxReplans: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := trainer.DistTrainConfig(spec, plan, corpus)
		cfg.Scenario = sc
		cfg.Parallelism = 4
		cfg.Controller = ctrl
		cfg.GradientDim = 4
		tr := metrics.NewTrace()
		cfg.Trace = tr
		res := runConfig(t, cfg, 10)
		if res.PlanSwitches < 1 {
			t.Fatal("golden trace run did not exercise a plan switch")
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("trace JSON not byte-identical across identical runs (%d vs %d bytes)", len(a), len(b))
	}
	// And a controller-free perturbed run is deterministic too.
	runPlain := func() []byte {
		cfg := trainer.DistTrainConfig(spec, plan, corpus)
		cfg.Scenario = sc
		cfg.Parallelism = 4
		tr := metrics.NewTrace()
		cfg.Trace = tr
		runConfig(t, cfg, 6)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runPlain(), runPlain()) {
		t.Error("controller-free trace JSON not byte-identical across identical runs")
	}
}

// TestReplanAgainstEvaluateEstimate sanity-checks that the applied
// plan is genuinely different placement, not a re-stamp of the
// incumbent.
func TestReplanAgainstEvaluateEstimate(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 32)
	plan := planFor(t, spec)
	sc, err := scenario.Parse("workload-shift:iters=1-9,factor=3")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Threshold: 0.5, Window: 2, MaxReplans: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := trainer.DistTrainConfig(spec, plan, corpus)
	cfg.Scenario = sc
	cfg.Controller = ctrl
	res := runConfig(t, cfg, 10)
	if res.PlanSwitches < 1 {
		t.Fatalf("no switch: %+v", ctrl.Reports())
	}
	next := ctrl.CurrentPlan()
	if samePlacement(plan, next) {
		t.Error("switch applied but placement unchanged")
	}
	if next.TotalGPUs() > spec.Cluster.TotalGPUs() {
		t.Errorf("re-planned fleet %d exceeds the cluster %d", next.TotalGPUs(), spec.Cluster.TotalGPUs())
	}
	// Under an image-heavier distribution the modality modules should
	// not shrink to fewer GPUs than the incumbent gave them.
	if got, was := next.Modules[model.Encoder].GPUs(), plan.Modules[model.Encoder].GPUs(); got < was {
		t.Errorf("3x image shift shrank the encoder allocation %d -> %d", was, got)
	}
}
