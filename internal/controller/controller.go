// Package controller closes DistTrain's §4.3 adaptive loop at runtime:
// it watches per-iteration training signals — the iteration-time
// spread across DP ranks, producer-pool failover/rejection counts, and
// the observed per-sample cost distribution drifting away from the
// profile the current plan was built on — and, when drift exceeds a
// configured threshold, recalibrates the performance profiler from the
// observed samples and re-runs the §4.3 orchestration search
// *concurrently with training*. The search's winner must then prove
// itself: incumbent and candidate are trial-evaluated on the observed
// window under the full runtime cost model, and only a candidate that
// beats the incumbent there is handed to the runtime — at a
// deterministic iteration boundary, where it applies as a costed
// reconfiguration (checkpoint write + restore read, no lost work).
//
// This is the model/data heterogeneity drift the paper argues must be
// handled continuously (cf. Entrain's variable-heterogeneity
// scheduling, PAPERS.md): the repo's orchestrator was adaptive only
// ahead of time — PlanDistTrainCtx picked a plan once — and the
// runtime then weathered stragglers, producer churn and distribution
// shift with no way to change its mind. The controller gives it one.
//
// Determinism contract: decisions are a pure function of the
// observation sequence. The plan search is the engine's deterministic
// parallel enumeration, the trigger is computed from deterministic
// runtime stats, and the switch boundary is fixed at trigger +
// 1 + ApplyDelay iterations (training overlaps the search; the runtime
// blocks at the boundary if the search hasn't finished). Two identical
// runs therefore trigger, search and switch identically — which is
// what lets the golden-trace test pin byte-identical timelines, and
// the no-drift test pin byte-identical Results against a
// controller-free run.
package controller

import (
	"context"
	"fmt"
	"math"
	"sync"

	"disttrain/internal/data"
	"disttrain/internal/model"
	"disttrain/internal/orchestrator"
	"disttrain/internal/profiler"
	"disttrain/internal/trainer"
)

// Defaults for Config's zero values.
const (
	DefaultThreshold  = 0.25
	DefaultWindow     = 3
	DefaultApplyDelay = 1
	DefaultMaxReplans = 3
	DefaultMinGain    = 0.02
)

// Config parameterises a re-planning controller.
type Config struct {
	// Train is the run's training configuration, used two ways: its
	// Spec (cluster, model, batch geometry, calibrated profiler — the
	// profiler is only ever queried, recalibration happens on a fresh
	// one with the same options) defines the re-planning problem, and
	// the whole Config is the template for trial evaluations — every
	// candidate plan is scored on the observed window under the full
	// runtime cost model (trainer.TrialMeanIterTime) with the same
	// cost-model knobs as the live run. Train.Plan is the incumbent;
	// Train's Scenario/Controller/Trace/Source fields are ignored.
	Train trainer.Config

	// Threshold is the drift score that triggers a re-plan; 0 means
	// DefaultThreshold. The score is the maximum of the three
	// normalized drift signals (see DriftReport).
	Threshold float64
	// Window is how many recent iterations feed drift estimation (and
	// profiler recalibration); 0 means DefaultWindow. No decision fires
	// before a full window has been observed.
	Window int
	// Cooldown is the minimum number of iterations between triggers;
	// 0 means 2*Window.
	Cooldown int
	// ApplyDelay is how many iterations of training overlap the
	// concurrent plan search before the switch boundary; 0 means
	// DefaultApplyDelay. A trigger while observing iteration i applies
	// before iteration i+1+ApplyDelay.
	ApplyDelay int
	// MaxReplans caps applied plan switches for the run; 0 means
	// DefaultMaxReplans, negative means unlimited. Triggered searches
	// that decline to switch (no better plan under the recalibrated
	// profile) do not consume the budget — Cooldown throttles search
	// frequency.
	MaxReplans int
	// MinGain is the minimum relative improvement of the candidate
	// plan's trial-evaluated mean iteration time over the incumbent's
	// — both scored on the observed window under the full runtime cost
	// model — for a switch to apply; 0 means DefaultMinGain.
	MinGain float64
	// Parallelism bounds the plan-search worker pool; values < 1 mean
	// GOMAXPROCS. The chosen plan is independent of this value.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * c.Window
	}
	if c.ApplyDelay == 0 {
		c.ApplyDelay = DefaultApplyDelay
	}
	if c.MaxReplans == 0 {
		c.MaxReplans = DefaultMaxReplans
	}
	if c.MinGain == 0 {
		c.MinGain = DefaultMinGain
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Train.Validate(); err != nil {
		return err
	}
	if c.Threshold < 0 || math.IsNaN(c.Threshold) {
		return fmt.Errorf("controller: threshold %g must be non-negative", c.Threshold)
	}
	if c.Window < 0 || c.Cooldown < 0 || c.ApplyDelay < 0 {
		return fmt.Errorf("controller: window/cooldown/apply-delay must be non-negative")
	}
	if c.MinGain < 0 || c.MinGain >= 1 {
		return fmt.Errorf("controller: min gain %g outside [0,1)", c.MinGain)
	}
	return nil
}

// DriftReport is one drift evaluation over a full observation window.
type DriftReport struct {
	// Iter is the newest iteration in the window.
	Iter int
	// CostDrift is the relative distance between the windowed mean
	// per-sample (encoder+generator) cost and the same cost on the
	// profile the current plan was built on.
	CostDrift float64
	// SpreadDrift is the windowed mean iteration-time spread across DP
	// ranks ((max-min)/max pipeline time).
	SpreadDrift float64
	// PoolDrift is the windowed producer-pool failover+rejection count
	// over fetches (0 without a pool).
	PoolDrift float64
	// Score is the trigger metric: max of the three signals.
	Score float64
	// Triggered marks the report that launched a re-planning search.
	Triggered bool
}

// record is one observed iteration folded into the window.
type record struct {
	iter                   int
	batch                  []data.Sample // the observed global batch (read-only)
	shapes                 []model.SampleShape
	spread                 float64
	poolMoves, poolFetches int64 // cumulative counters at observation time
	havePool               bool
}

// searchOutcome is what a concurrent re-planning search delivers at
// its boundary.
type searchOutcome struct {
	plan *orchestrator.Plan
	// refShape is the recalibrated mean shape the plan was built on —
	// the new drift reference once the switch applies.
	refShape model.SampleShape
	reason   string
}

type pendingSearch struct {
	applyAt int
	ch      chan *searchOutcome
}

// Controller implements trainer.Controller: deterministic drift
// detection, concurrent re-planning, boundary-synchronised switches.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	lastIter int
	window   []record
	// refCost is the per-sample cost of the profile the current plan
	// was built on, priced by the runtime's profiler so observed and
	// reference costs are commensurable.
	refCost float64
	// current is the incumbent plan (updated when a switch applies).
	current  *orchestrator.Plan
	pending  *pendingSearch
	triggers int
	lastTrig int
	applied  int
	reports  []DriftReport
}

// Assert the seams are satisfied.
var (
	_ trainer.Controller = (*Controller)(nil)
	_ trainer.LeaseAware = (*Controller)(nil)
)

// New validates the config and builds a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:      cfg,
		lastIter: -1,
		lastTrig: math.MinInt32,
		current:  cfg.Train.Plan,
	}
	c.refCost = sampleCost(cfg.Train.Spec, cfg.Train.Spec.Profiler.MeanShape())
	return c, nil
}

// sampleCost prices the data-heterogeneous per-sample work (encoder +
// generator) of one shape — the quantity whose distribution the plan
// was optimised for.
func sampleCost(s orchestrator.Spec, shape model.SampleShape) float64 {
	return s.Profiler.SampleTrain(model.Encoder, 1, shape) +
		s.Profiler.SampleTrain(model.Generator, 1, shape)
}

// Observe implements trainer.Controller. It folds the iteration into
// the drift window and, when a full window's drift score exceeds the
// threshold (outside the cooldown, below the re-plan cap, with no
// search already in flight), launches the §4.3 search on a background
// goroutine against a freshly recalibrated profiler.
func (c *Controller) Observe(obs trainer.Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if obs.Iter <= c.lastIter {
		return // failure-recovery rewind: already observed
	}
	c.lastIter = obs.Iter

	rec := record{iter: obs.Iter, batch: obs.Batch, spread: obs.Stats.StragglerSpread}
	rec.shapes = make([]model.SampleShape, len(obs.Batch))
	for i, s := range obs.Batch {
		rec.shapes[i] = s.Shape()
	}
	if obs.Pool != nil {
		rec.havePool = true
		rec.poolMoves = obs.Pool.Failovers + obs.Pool.Rejections
		rec.poolFetches = obs.Pool.Fetches
	}
	c.window = append(c.window, rec)
	if len(c.window) > c.cfg.Window {
		c.window = c.window[len(c.window)-c.cfg.Window:]
	}
	if len(c.window) < c.cfg.Window || c.pending != nil {
		return
	}
	if c.cfg.MaxReplans >= 0 && c.applied >= c.cfg.MaxReplans {
		return
	}
	if obs.Iter-c.lastTrig < c.cfg.Cooldown {
		return
	}

	rep := c.driftLocked(obs.Iter)
	if rep.Score > c.cfg.Threshold {
		rep.Triggered = true
		c.triggers++
		c.lastTrig = obs.Iter
		c.launchLocked(obs.Iter, rep)
	}
	if len(c.reports) < 4096 {
		c.reports = append(c.reports, rep)
	}
}

// driftLocked scores the current window.
func (c *Controller) driftLocked(iter int) DriftReport {
	rep := DriftReport{Iter: iter}
	var shapes []model.SampleShape
	var spreadSum float64
	for _, r := range c.window {
		shapes = append(shapes, r.shapes...)
		spreadSum += r.spread
	}
	// profiler.MeanShapeOf is the same fold CalibrateShapes stores, so
	// the observed cost is measured in the coordinates a re-plan would
	// optimise.
	obsCost := sampleCost(c.cfg.Train.Spec, profiler.MeanShapeOf(shapes))
	if c.refCost > 0 {
		rep.CostDrift = math.Abs(obsCost-c.refCost) / c.refCost
	}
	rep.SpreadDrift = spreadSum / float64(len(c.window))
	first, last := c.window[0], c.window[len(c.window)-1]
	if first.havePool && last.havePool {
		if df := last.poolFetches - first.poolFetches; df > 0 {
			rep.PoolDrift = float64(last.poolMoves-first.poolMoves) / float64(df)
		} else if last.poolMoves > first.poolMoves {
			rep.PoolDrift = 1
		}
	}
	rep.Score = math.Max(rep.CostDrift, math.Max(rep.SpreadDrift, rep.PoolDrift))
	return rep
}

// launchLocked starts the concurrent re-planning search and schedules
// its deterministic apply boundary.
func (c *Controller) launchLocked(iter int, rep DriftReport) {
	var shapes []model.SampleShape
	batches := make([][]data.Sample, 0, len(c.window))
	for _, r := range c.window {
		shapes = append(shapes, r.shapes...)
		batches = append(batches, r.batch)
	}
	incumbent := *c.current
	ch := make(chan *searchOutcome, 1) // buffered: never strands the search goroutine
	c.pending = &pendingSearch{applyAt: iter + 1 + c.cfg.ApplyDelay, ch: ch}
	cfg := c.cfg
	go func() { ch <- runSearch(cfg, incumbent, shapes, batches, rep) }()
}

// runSearch recalibrates a fresh profiler from the observed shapes,
// re-runs the §4.3 enumeration on it, and then arbitrates: incumbent
// and candidate are both trial-evaluated on the observed window
// batches under the full runtime cost model (the planner's analytic
// estimate and the runtime regularly disagree on close plans, and
// MeanIterTime is measured by the runtime). It returns nil (no switch)
// when the search fails, the winner equals the incumbent, or the
// winner's trial time does not beat the incumbent's by MinGain.
func runSearch(cfg Config, incumbent orchestrator.Plan, shapes []model.SampleShape, batches [][]data.Sample, rep DriftReport) *searchOutcome {
	fresh, err := profiler.New(cfg.Train.Spec.Profiler.Options())
	if err != nil {
		return nil
	}
	if err := fresh.CalibrateShapes(shapes); err != nil {
		return nil
	}
	spec := cfg.Train.Spec
	spec.Profiler = fresh
	plan, err := orchestrator.PlanDistTrainCtx(context.Background(), spec,
		orchestrator.SearchOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil
	}
	if samePlacement(&incumbent, plan) {
		return nil
	}
	trial := func(p *orchestrator.Plan) (float64, error) {
		tc := cfg.Train
		tc.Plan = p
		return trainer.TrialMeanIterTime(tc, batches)
	}
	curCost, err := trial(&incumbent)
	if err != nil {
		curCost = math.Inf(1) // incumbent no longer executes the observed load
	}
	newCost, err := trial(plan)
	if err != nil || newCost >= curCost*(1-cfg.MinGain) {
		return nil
	}
	return &searchOutcome{
		plan:     plan,
		refShape: fresh.MeanShape(),
		reason: fmt.Sprintf("drift %.2f (cost %.2f, spread %.2f, pool %.2f): trial iter %.3fs -> %.3fs",
			rep.Score, rep.CostDrift, rep.SpreadDrift, rep.PoolDrift, curCost, newCost),
	}
}

// samePlacement reports whether two plans make identical resource and
// parallelism decisions.
func samePlacement(a, b *orchestrator.Plan) bool {
	for i := range a.Modules {
		if a.Modules[i].Config != b.Modules[i].Config || a.Modules[i].Replicated != b.Modules[i].Replicated {
			return false
		}
	}
	return true
}

// Pending implements trainer.Controller. At the scheduled boundary it
// joins the concurrent search — blocking if training got there first —
// and hands the runtime the switch, if the search produced one. The
// drift reference and window reset on a switch: the new plan defines
// the new normal.
func (c *Controller) Pending(iter int) *trainer.PlanSwitch {
	c.mu.Lock()
	p := c.pending
	if p == nil || iter != p.applyAt {
		c.mu.Unlock()
		return nil
	}
	c.pending = nil
	c.mu.Unlock()

	out := <-p.ch
	if out == nil {
		return nil
	}
	c.mu.Lock()
	c.current = out.plan
	c.refCost = sampleCost(c.cfg.Train.Spec, out.refShape)
	c.window = nil
	c.applied++
	c.mu.Unlock()
	return &trainer.PlanSwitch{Plan: out.plan, Reason: out.reason}
}

// LeaseChanged implements trainer.LeaseAware: a fleet lease resize is
// a reconfiguration the controller did not choose, so everything it
// reasons relative to moves — the orchestration problem (the spec's
// cluster is now the resized lease's subcluster), the incumbent plan,
// and the drift reference the current window was scored against. The
// controller adopts the new geometry as the new normal: it drops the
// observation window, abandons any in-flight search (its boundary
// would apply a plan built for the old geometry), and re-bases drift
// on the profile the new plan was built under.
func (c *Controller) LeaseChanged(iter int, spec orchestrator.Spec, plan *orchestrator.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Train.Spec = spec
	c.cfg.Train.Plan = plan
	c.current = plan
	c.refCost = sampleCost(spec, spec.Profiler.MeanShape())
	// Abandon any in-flight search: its boundary would apply a plan
	// built for the old geometry. The channel is buffered, so the
	// searcher's single send never blocks and the channel is simply
	// collected.
	c.window = nil
	c.pending = nil
}

// CurrentPlan returns the incumbent plan (the latest applied switch,
// or the initial plan).
func (c *Controller) CurrentPlan() *orchestrator.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Triggers returns how many re-planning searches drift launched;
// Applied how many produced a switch the runtime was handed.
func (c *Controller) Triggers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.triggers
}

func (c *Controller) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// Reports returns the drift evaluations in observation order.
func (c *Controller) Reports() []DriftReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DriftReport(nil), c.reports...)
}
