package controller

import (
	"reflect"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/data"
	"disttrain/internal/model"
	"disttrain/internal/orchestrator"
	"disttrain/internal/profiler"
	"disttrain/internal/trainer"
)

// buildSpec wires a calibrated orchestration spec at the §7.2 ablation
// scale, mirroring the trainer package's test helper.
func buildSpec(t *testing.T, nodes, bs int) (orchestrator.Spec, *data.Corpus) {
	t.Helper()
	cl := cluster.Production(nodes)
	m := model.MLLM9B()
	opts := profiler.DefaultOptions(cl, m)
	p, err := profiler.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := data.NewCorpus(data.LAION400M())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Calibrate(corpus, 200); err != nil {
		t.Fatal(err)
	}
	return orchestrator.Spec{Cluster: cl, Model: m, GlobalBatch: bs, Microbatch: 1, Profiler: p, VPP: 1}, corpus
}

func planFor(t *testing.T, spec orchestrator.Spec) *orchestrator.Plan {
	t.Helper()
	plan, err := orchestrator.PlanDistTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestConfigValidate(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 16)
	plan := planFor(t, spec)
	good := Config{Train: trainer.DistTrainConfig(spec, plan, corpus)}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Train.Plan = nil },
		func(c *Config) { c.Threshold = -1 },
		func(c *Config) { c.Window = -1 },
		func(c *Config) { c.MinGain = 1 },
		func(c *Config) { c.Train.Spec.Profiler = nil },
	} {
		bad := good
		mutate(&bad)
		if _, err := New(bad); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
}

// TestObserveDedupesRewinds: failure-recovery re-deliveries (iter <=
// last observed) must not re-enter the window, or drift would be
// double counted across rewinds.
func TestObserveDedupesRewinds(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 16)
	plan := planFor(t, spec)
	c, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := corpus.Batch(0, 4)
	obs := func(iter int) trainer.Observation {
		return trainer.Observation{Iter: iter, Batch: batch}
	}
	c.Observe(obs(0))
	c.Observe(obs(1))
	c.Observe(obs(1)) // rewind re-delivery
	c.Observe(obs(0)) // rewind re-delivery
	if got := len(c.window); got != 2 {
		t.Errorf("window holds %d records after dedupe, want 2", got)
	}
	if got := len(c.Reports()); got != 1 {
		t.Errorf("%d drift reports, want 1 (first full window only)", got)
	}
}

// TestNoTriggerBelowThreshold: a steady run scores drift near zero and
// never launches a search.
func TestNoTriggerBelowThreshold(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 16)
	plan := planFor(t, spec)
	c, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Observe(trainer.Observation{Iter: i, Batch: corpus.GlobalBatch(int64(i), 16)})
		if sw := c.Pending(i + 1); sw != nil {
			t.Fatalf("steady run produced a switch at %d: %+v", i+1, sw)
		}
	}
	if c.Triggers() != 0 {
		t.Errorf("steady run triggered %d searches", c.Triggers())
	}
	for _, rep := range c.Reports() {
		if rep.Score > 0.2 {
			t.Errorf("steady drift score %.3f implausibly high: %+v", rep.Score, rep)
		}
		if rep.Triggered {
			t.Errorf("steady report marked triggered: %+v", rep)
		}
	}
}

// TestMeanShapeMirrorsCalibration: the drift estimator and the
// recalibration path must agree on what "mean shape" means, or the
// controller would plan for a different distribution than it measured
// — both sides share profiler.MeanShapeOf.
func TestMeanShapeMirrorsCalibration(t *testing.T) {
	_, corpus := buildSpec(t, 4, 16)
	shapes := make([]model.SampleShape, 64)
	for i := range shapes {
		shapes[i] = corpus.Sample(int64(i)).Shape()
	}
	p, err := profiler.New(profiler.DefaultOptions(cluster.Production(4), model.MLLM9B()))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CalibrateShapes(shapes); err != nil {
		t.Fatal(err)
	}
	if got, want := profiler.MeanShapeOf(shapes), p.MeanShape(); !reflect.DeepEqual(got, want) {
		t.Errorf("MeanShapeOf %+v disagrees with CalibrateShapes %+v", got, want)
	}
	// Degenerate: text-only samples still yield a usable shape.
	deg := profiler.MeanShapeOf([]model.SampleShape{{}, {}})
	if len(deg.ImageTokens) == 0 {
		t.Error("text-only mean shape lost its image slot")
	}
}

// TestInfeasibleSwitchRejected: the runtime must drop (not abort on) a
// controller switch whose plan cannot execute under the spec — the
// seam is public and a controller may hand back anything.
func TestInfeasibleSwitchRejected(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 16)
	plan := planFor(t, spec)
	want := runConfig(t, trainer.DistTrainConfig(spec, plan, corpus), 4)

	bad := *plan
	bad.Modules[model.Backbone].Config.DP = 7 // 7 does not divide BS=16
	cfg := trainer.DistTrainConfig(spec, plan, corpus)
	cfg.Controller = &fixedSwitch{applyAt: 2, plan: &bad}
	got := runConfig(t, cfg, 4)
	if got.PlanSwitches != 0 {
		t.Fatalf("infeasible plan was applied: %+v", got.Replans)
	}
	got.GradientSum, want.GradientSum = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rejected switch still changed the run:\ngot  %+v\nwant %+v", got, want)
	}
}

// fixedSwitch is a minimal TrainController that proposes one plan at a
// fixed boundary.
type fixedSwitch struct {
	applyAt int
	plan    *orchestrator.Plan
}

func (f *fixedSwitch) Observe(trainer.Observation) {}
func (f *fixedSwitch) Pending(iter int) *trainer.PlanSwitch {
	if iter != f.applyAt {
		return nil
	}
	return &trainer.PlanSwitch{Plan: f.plan, Reason: "test"}
}

// TestLeaseChangedResetsBaseline: a fleet lease resize moves the
// orchestration problem under the controller's feet. LeaseChanged must
// adopt the new spec and plan as the incumbent, drop the observation
// window (its drift was scored against the old geometry), and abandon
// any scheduled search boundary so a stale plan never applies.
func TestLeaseChangedResetsBaseline(t *testing.T) {
	spec, corpus := buildSpec(t, 4, 16)
	plan := planFor(t, spec)
	c, err := New(Config{Train: trainer.DistTrainConfig(spec, plan, corpus), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := corpus.Batch(0, 4)
	c.Observe(trainer.Observation{Iter: 0, Batch: batch})
	c.Observe(trainer.Observation{Iter: 1, Batch: batch})
	// Fake an in-flight search scheduled for iter 3.
	ch := make(chan *searchOutcome, 1)
	ch <- nil
	c.mu.Lock()
	c.pending = &pendingSearch{applyAt: 3, ch: ch}
	c.mu.Unlock()

	smaller := spec
	smaller.Cluster.Nodes = 2
	newPlan := planFor(t, smaller)
	c.LeaseChanged(2, smaller, newPlan)

	if got := c.CurrentPlan(); got != newPlan {
		t.Error("incumbent plan did not follow the lease change")
	}
	c.mu.Lock()
	window, pending, train := len(c.window), c.pending, c.cfg.Train
	c.mu.Unlock()
	if window != 0 {
		t.Errorf("window holds %d records after a lease change, want 0", window)
	}
	if pending != nil {
		t.Error("stale search boundary survived the lease change")
	}
	if train.Spec.Cluster.Nodes != 2 || train.Plan != newPlan {
		t.Errorf("controller's re-planning problem not rebased: %d nodes", train.Spec.Cluster.Nodes)
	}
	if sw := c.Pending(3); sw != nil {
		t.Error("abandoned boundary still delivered a switch")
	}
}
