package data

// CostModel captures the CPU cost of multimodal data preprocessing —
// decompression, resizing and reordering (§2.3: "preprocessing such
// samples can take several seconds"). The trainer charges this cost on
// the training nodes when preprocessing is co-located (the monolithic
// baseline) and on dedicated CPU nodes when disaggregated.
type CostModel struct {
	// SecondsPerMegapixel is decode+resize CPU time per million source
	// pixels on one core. Calibrated so that ten 1024x1024 images cost
	// a few seconds on one core, matching the §2.3 example.
	SecondsPerMegapixel float64
	// SecondsPerTextKToken is tokenisation cost per thousand text
	// tokens (tiny; text is kilobytes).
	SecondsPerTextKToken float64
	// Cores is the effective CPU parallelism available for
	// preprocessing on a node.
	Cores int
}

// DefaultCostModel matches the production observation that a
// ten-image 1024^2 sample takes seconds of CPU time.
func DefaultCostModel() CostModel {
	return CostModel{
		SecondsPerMegapixel:  0.28,
		SecondsPerTextKToken: 0.002,
		Cores:                16,
	}
}

// SampleCPUSeconds returns single-core CPU seconds to preprocess one
// sample.
func (c CostModel) SampleCPUSeconds(s Sample) float64 {
	pixels := 0.0
	for _, ss := range s.Subsequences {
		if ss.Modality == Image {
			pixels += float64(ss.Resolution) * float64(ss.Resolution)
		}
	}
	t := pixels / 1e6 * c.SecondsPerMegapixel
	t += float64(s.TextTokens()) / 1000 * c.SecondsPerTextKToken
	return t
}

// NodeStallSeconds returns the wall-clock stall a training node incurs
// preprocessing the given samples inline with its configured core
// parallelism (the co-located baseline of Figure 17).
func (c CostModel) NodeStallSeconds(samples []Sample) float64 {
	total := 0.0
	for _, s := range samples {
		total += c.SampleCPUSeconds(s)
	}
	cores := c.Cores
	if cores < 1 {
		cores = 1
	}
	return total / float64(cores)
}
