package data

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width binned density over integer observations,
// used to regenerate the Figure 5 characterisation plots.
type Histogram struct {
	Min, Max  int
	BinWidth  int
	Counts    []int
	Total     int
	sumValues float64
}

// NewHistogram builds a histogram over [min, max] with the given number
// of bins.
func NewHistogram(min, max, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic(fmt.Sprintf("data: bad histogram bounds [%d,%d] bins=%d", min, max, bins))
	}
	width := (max - min + bins - 1) / bins
	if width == 0 {
		width = 1
	}
	return &Histogram{Min: min, Max: max, BinWidth: width, Counts: make([]int, bins)}
}

// Add records one observation; out-of-range values clamp to the edge
// bins.
func (h *Histogram) Add(v int) {
	bin := (v - h.Min) / h.BinWidth
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.Total++
	h.sumValues += float64(v)
}

// Density returns the per-bin probability mass.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// Mean returns the sample mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return h.sumValues / float64(h.Total)
}

// Mode returns the midpoint of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Min + best*h.BinWidth + h.BinWidth/2
}

// Render draws a horizontal ASCII density plot with the given bar width.
func (h *Histogram) Render(label string, barWidth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, mean=%.1f)\n", label, h.Total, h.Mean())
	dens := h.Density()
	maxD := 0.0
	for _, d := range dens {
		maxD = math.Max(maxD, d)
	}
	for i, d := range dens {
		lo := h.Min + i*h.BinWidth
		n := 0
		if maxD > 0 {
			n = int(d / maxD * float64(barWidth))
		}
		fmt.Fprintf(&b, "%6d | %-*s %.4f\n", lo, barWidth, strings.Repeat("#", n), d)
	}
	return b.String()
}

// Skewness returns the standardised third moment computed from raw
// values (used to verify the "highly skewed" claim of §2.3).
func Skewness(values []int) float64 {
	n := float64(len(values))
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range values {
		mean += float64(v)
	}
	mean /= n
	var m2, m3 float64
	for _, v := range values {
		d := float64(v) - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Percentile returns the p-th percentile (0..100) of the values.
func Percentile(values []int, p float64) int {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Characterization aggregates the three Figure 5 distributions over a
// corpus prefix.
type Characterization struct {
	TextSizes   *Histogram // Fig. 5(a)
	ImageSizes  *Histogram // Fig. 5(b)
	ImageCounts *Histogram // Fig. 5(c)

	textRaw, imageRaw, countRaw []int
}

// Characterize scans n samples of the corpus and builds the Figure 5
// histograms.
func Characterize(c *Corpus, n int) *Characterization {
	ch := &Characterization{
		TextSizes:   NewHistogram(0, 128, 32),
		ImageSizes:  NewHistogram(0, 4096, 32),
		ImageCounts: NewHistogram(0, 32, 32),
	}
	for i := 0; i < n; i++ {
		s := c.Sample(int64(i))
		for _, ss := range s.Subsequences {
			switch ss.Modality {
			case Text:
				ch.TextSizes.Add(ss.Tokens)
				ch.textRaw = append(ch.textRaw, ss.Tokens)
			case Image:
				ch.ImageSizes.Add(ss.Tokens)
				ch.imageRaw = append(ch.imageRaw, ss.Tokens)
			}
		}
		ch.ImageCounts.Add(s.NumImages())
		ch.countRaw = append(ch.countRaw, s.NumImages())
	}
	return ch
}

// TextSkewness, ImageSkewness and CountSkewness expose the raw
// skewness of each distribution.
func (ch *Characterization) TextSkewness() float64  { return Skewness(ch.textRaw) }
func (ch *Characterization) ImageSkewness() float64 { return Skewness(ch.imageRaw) }
func (ch *Characterization) CountSkewness() float64 { return Skewness(ch.countRaw) }
