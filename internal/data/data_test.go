package data

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"disttrain/internal/model"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := NewCorpus(LAION400M())
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	return c
}

func TestSpecValidate(t *testing.T) {
	good := LAION400M()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.SeqLen = 0 },
		func(s *Spec) { s.TextSigma = -1 },
		func(s *Spec) { s.ResMedian = 0 },
		func(s *Spec) { s.MinResolution = 4 },
		func(s *Spec) { s.MaxResolution = 32 },
		func(s *Spec) { s.GenImageFraction = 1.5 },
		func(s *Spec) { s.MaxImages = 0 },
	}
	for i, mutate := range bad {
		s := LAION400M()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad spec", i)
		}
	}
}

func TestSamplesPackExactly(t *testing.T) {
	c := testCorpus(t)
	for i := int64(0); i < 500; i++ {
		s := c.Sample(i)
		total := 0
		for _, ss := range s.Subsequences {
			if ss.Tokens <= 0 {
				t.Fatalf("sample %d has empty subsequence", i)
			}
			total += ss.Tokens
		}
		if total != c.Spec().SeqLen {
			t.Fatalf("sample %d packs %d tokens, want %d", i, total, c.Spec().SeqLen)
		}
		if s.TextTokens()+s.TotalImageTokens() != c.Spec().SeqLen {
			t.Fatalf("sample %d modality split inconsistent", i)
		}
	}
}

func TestSamplesDeterministic(t *testing.T) {
	c1 := testCorpus(t)
	c2 := testCorpus(t)
	for i := int64(0); i < 100; i++ {
		a, b := c1.Sample(i), c2.Sample(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sample %d not deterministic", i)
		}
	}
	// A different seed must change the corpus.
	spec := LAION400M()
	spec.Seed++
	c3, _ := NewCorpus(spec)
	same := 0
	for i := int64(0); i < 100; i++ {
		if reflect.DeepEqual(c1.Sample(i), c3.Sample(i)) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical samples", same)
	}
}

// Figure 5: all three distributions must be right-skewed with the
// paper's supports.
func TestFigure5Distributions(t *testing.T) {
	c := testCorpus(t)
	ch := Characterize(c, 2000)

	if sk := ch.TextSkewness(); sk < 0.8 {
		t.Errorf("text subsequence skewness = %.2f, want strongly right-skewed", sk)
	}
	if sk := ch.ImageSkewness(); sk < 0.8 {
		t.Errorf("image subsequence skewness = %.2f, want strongly right-skewed", sk)
	}
	if sk := ch.CountSkewness(); sk < 0.3 {
		t.Errorf("image count skewness = %.2f, want right-skewed", sk)
	}

	// Supports match the Figure 5 axes.
	if m := ch.TextSizes.Mean(); m < 8 || m > 64 {
		t.Errorf("text subsequence mean %.1f outside plausible Fig 5(a) range", m)
	}
	if m := ch.ImageSizes.Mean(); m < 256 || m > 2048 {
		t.Errorf("image subsequence mean %.1f outside plausible Fig 5(b) range", m)
	}
	if m := ch.ImageCounts.Mean(); m < 2 || m > 16 {
		t.Errorf("images per sample mean %.1f outside plausible Fig 5(c) range", m)
	}
}

func TestImageTokensAreValidPatchCounts(t *testing.T) {
	c := testCorpus(t)
	for i := int64(0); i < 300; i++ {
		for _, ss := range c.Sample(i).Subsequences {
			if ss.Modality != Image {
				continue
			}
			if ss.Resolution%model.PatchSize != 0 {
				t.Fatalf("sample %d: resolution %d not on patch grid", i, ss.Resolution)
			}
			if got := model.ImageTokens(ss.Resolution); got != ss.Tokens {
				t.Fatalf("sample %d: tokens %d != ImageTokens(%d)=%d", i, ss.Tokens, ss.Resolution, got)
			}
			if ss.Tokens > 4096 {
				t.Fatalf("image subsequence exceeds Fig 5(b) support: %d", ss.Tokens)
			}
		}
	}
}

func TestGenImagesBounded(t *testing.T) {
	c := testCorpus(t)
	sawGen := false
	for i := int64(0); i < 500; i++ {
		s := c.Sample(i)
		if s.GenImages > s.NumImages() {
			t.Fatalf("sample %d: GenImages %d > NumImages %d", i, s.GenImages, s.NumImages())
		}
		if s.GenImages > 0 {
			sawGen = true
		}
	}
	if !sawGen {
		t.Error("no sample had generation targets; generator would be idle")
	}
}

func TestPixelBytesScale(t *testing.T) {
	// §2.3: text is kilobytes, images are megabytes.
	c := testCorpus(t)
	var withImages int64
	for i := int64(0); i < 100; i++ {
		s := c.Sample(i)
		if s.NumImages() >= 4 {
			withImages = s.PixelBytes()
			break
		}
	}
	if withImages < 1<<20 {
		t.Errorf("multi-image sample payload = %d bytes, want megabytes", withImages)
	}
}

func TestBatchAndGlobalBatch(t *testing.T) {
	c := testCorpus(t)
	b := c.Batch(10, 5)
	if len(b) != 5 {
		t.Fatalf("Batch returned %d samples", len(b))
	}
	for i, s := range b {
		if s.Index != int64(10+i) {
			t.Errorf("batch sample %d has index %d", i, s.Index)
		}
	}
	g := c.GlobalBatch(3, 4) // samples 12..15
	if g[0].Index != 12 || g[3].Index != 15 {
		t.Errorf("GlobalBatch indices wrong: %d..%d", g[0].Index, g[3].Index)
	}
	if !reflect.DeepEqual(c.Sample(12), g[0]) {
		t.Error("GlobalBatch sample differs from direct Sample")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	dens := h.Density()
	for i, d := range dens {
		if math.Abs(d-0.1) > 1e-9 {
			t.Fatalf("bin %d density %g, want 0.1", i, d)
		}
	}
	if h.Mean() != 49.5 {
		t.Errorf("Mean = %g, want 49.5", h.Mean())
	}
	// Clamping.
	h.Add(-5)
	h.Add(500)
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Errorf("edge bins = %d,%d, want 11,11", h.Counts[0], h.Counts[9])
	}
	if out := h.Render("test", 20); len(out) == 0 {
		t.Error("Render produced nothing")
	}
}

func TestSkewnessSigns(t *testing.T) {
	rightSkewed := []int{1, 1, 1, 2, 2, 3, 10, 50}
	if Skewness(rightSkewed) <= 0 {
		t.Error("right-skewed data should have positive skewness")
	}
	symmetric := []int{1, 2, 3, 4, 5, 6, 7}
	if math.Abs(Skewness(symmetric)) > 0.01 {
		t.Error("symmetric data should have ~zero skewness")
	}
	if Skewness([]int{5}) != 0 || Skewness(nil) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestPercentile(t *testing.T) {
	vals := []int{9, 1, 5, 3, 7}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("P0 = %d", got)
	}
	if got := Percentile(vals, 100); got != 9 {
		t.Errorf("P100 = %d", got)
	}
	if got := Percentile(vals, 50); got != 5 {
		t.Errorf("P50 = %d", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	// Input must not be mutated.
	if !reflect.DeepEqual(vals, []int{9, 1, 5, 3, 7}) {
		t.Error("Percentile mutated its input")
	}
}

// Property: every sample, at any index, packs exactly SeqLen tokens and
// respects the image cap.
func TestSampleInvariants(t *testing.T) {
	c := testCorpus(t)
	f := func(idx int64) bool {
		if idx < 0 {
			idx = -idx
		}
		s := c.Sample(idx)
		total := 0
		for _, ss := range s.Subsequences {
			total += ss.Tokens
		}
		return total == c.Spec().SeqLen &&
			s.NumImages() <= c.Spec().MaxImages &&
			s.GenImages <= s.NumImages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
