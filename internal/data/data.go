// Package data synthesises the multimodal training corpus DistTrain is
// evaluated on. The paper uses LAION-400M: image-text pairs tokenized
// (Llama tokenizer for text, 16x16 patches for images) and interleaved
// into fixed 8192-token training sequences (§2.3, §7). The dataset
// itself is not redistributable, so this package generates a
// deterministic synthetic corpus whose three characterising
// distributions match Figure 5:
//
//	(a) text subsequence sizes   — highly skewed, bulk under ~64 tokens
//	(b) image subsequence sizes  — skewed over [16, 4096] tokens
//	(c) image subsequences/sample — skewed over [1, 32]
//
// Every sample is generated independently from its index, so any
// worker can materialise any slice of the corpus without coordination —
// the property the disaggregated preprocessing producers rely on.
package data

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"disttrain/internal/model"
)

// Subsequence is one modality-contiguous run of tokens inside a packed
// training sequence.
type Subsequence struct {
	Modality Modality
	// Tokens is the subsequence length in modality tokens.
	Tokens int
	// Resolution is the source image edge in pixels (images only).
	Resolution int
}

// Modality tags a subsequence.
type Modality int

const (
	// Text tokens from the Llama tokenizer.
	Text Modality = iota
	// Image tokens from 16x16 patches.
	Image
)

func (m Modality) String() string {
	if m == Text {
		return "text"
	}
	return "image"
}

// Sample is one packed training sample: interleaved text and image
// subsequences totalling exactly the configured sequence length, plus
// the generation targets for the modality generator.
type Sample struct {
	// Index is the sample's position in the corpus; samples are
	// reproducible from their index alone.
	Index int64
	// Subsequences in interleaved order.
	Subsequences []Subsequence
	// GenImages is the number of images the generator trains on.
	GenImages int
	// SeqLen is the packed length (all subsequences sum to this).
	SeqLen int
}

// TextTokens returns the total text token count.
func (s Sample) TextTokens() int {
	t := 0
	for _, ss := range s.Subsequences {
		if ss.Modality == Text {
			t += ss.Tokens
		}
	}
	return t
}

// ImageTokenSizes returns the token count of each image subsequence in
// order.
func (s Sample) ImageTokenSizes() []int {
	return s.AppendImageTokens(nil)
}

// AppendImageTokens appends the token count of each image subsequence,
// in order, to dst and returns the extended slice. Hot paths pass a
// reused buffer (dst[:0]) to price samples without allocating.
func (s Sample) AppendImageTokens(dst []int) []int {
	for _, ss := range s.Subsequences {
		if ss.Modality == Image {
			dst = append(dst, ss.Tokens)
		}
	}
	return dst
}

// NumImages returns the image subsequence count.
func (s Sample) NumImages() int {
	n := 0
	for _, ss := range s.Subsequences {
		if ss.Modality == Image {
			n++
		}
	}
	return n
}

// TotalImageTokens sums image subsequence sizes.
func (s Sample) TotalImageTokens() int {
	t := 0
	for _, ss := range s.Subsequences {
		if ss.Modality == Image {
			t += ss.Tokens
		}
	}
	return t
}

// Shape converts the sample into the model package's workload
// characterisation.
func (s Sample) Shape() model.SampleShape {
	return model.SampleShape{ImageTokens: s.ImageTokenSizes(), GenImages: s.GenImages}
}

// ShapeInto is the allocation-free variant of Shape: the shape's
// ImageTokens field is built in buf (grown as needed). The returned
// shape aliases the buffer, so it is only valid until the caller's
// next ShapeInto call with the same buffer; callees must not retain
// it.
func (s Sample) ShapeInto(buf []int) model.SampleShape {
	return model.SampleShape{ImageTokens: s.AppendImageTokens(buf[:0]), GenImages: s.GenImages}
}

// PixelBytes returns the decoded RGB payload size of all source images,
// the quantity that makes multimodal samples megabytes while their text
// is kilobytes (§2.3).
func (s Sample) PixelBytes() int64 {
	var b int64
	for _, ss := range s.Subsequences {
		if ss.Modality == Image {
			b += int64(ss.Resolution) * int64(ss.Resolution) * 3
		}
	}
	return b
}

// Spec parameterises the synthetic corpus.
type Spec struct {
	// Seed namespaces the whole corpus; two corpora with equal specs are
	// identical.
	Seed int64
	// SeqLen is the packed training sequence length (8192 in the paper).
	SeqLen int
	// TextMedian/TextSigma shape the log-normal text subsequence size.
	TextMedian float64
	TextSigma  float64
	// MaxTextTokens truncates text subsequences (Fig. 5a x-axis: 128).
	MaxTextTokens int
	// ResMedian/ResSigma shape the log-normal source image edge.
	ResMedian float64
	ResSigma  float64
	// MinResolution/MaxResolution clamp image edges; tokens then span
	// [ (Min/16)^2, (Max/16)^2 ] = [16, 4096] with the defaults.
	MinResolution, MaxResolution int
	// GenImageFraction is the probability that an interleaved image is
	// also a generation target.
	GenImageFraction float64
	// MaxImages caps image subsequences per sample (Fig. 5c x-axis: 32).
	MaxImages int
}

// LAION400M returns the corpus specification calibrated to reproduce
// the Figure 5 distributions.
func LAION400M() Spec {
	return Spec{
		Seed:             0x1a104,
		SeqLen:           8192,
		TextMedian:       18,
		TextSigma:        1.05,
		MaxTextTokens:    128,
		ResMedian:        420,
		ResSigma:         0.55,
		MinResolution:    64,
		MaxResolution:    1024,
		GenImageFraction: 0.25,
		MaxImages:        32,
	}
}

// Validate reports whether the spec is usable.
func (sp Spec) Validate() error {
	switch {
	case sp.SeqLen <= 0:
		return fmt.Errorf("data: SeqLen %d must be positive", sp.SeqLen)
	case sp.TextMedian <= 0 || sp.TextSigma <= 0:
		return fmt.Errorf("data: text distribution parameters must be positive")
	case sp.ResMedian <= 0 || sp.ResSigma <= 0:
		return fmt.Errorf("data: resolution distribution parameters must be positive")
	case sp.MinResolution < model.PatchSize || sp.MaxResolution < sp.MinResolution:
		return fmt.Errorf("data: bad resolution bounds [%d,%d]", sp.MinResolution, sp.MaxResolution)
	case sp.GenImageFraction < 0 || sp.GenImageFraction > 1:
		return fmt.Errorf("data: GenImageFraction %g outside [0,1]", sp.GenImageFraction)
	case sp.MaxImages <= 0:
		return fmt.Errorf("data: MaxImages must be positive")
	}
	return nil
}

// Corpus is a deterministic, indexable synthetic dataset. Sample
// results are memoized: materialising a sample seeds a fresh legacy
// math/rand generator, which dominates CPU profiles of the training
// loop, while the same indices are requested over and over (prefetch,
// calibration, many fleet tenants sharing one corpus). The memo is
// bounded and safe for concurrent use.
type Corpus struct {
	spec Spec

	mu   sync.RWMutex
	memo map[int64]Sample
}

// memoLimit bounds the sample memo; on overflow the map is dropped and
// rebuilt, keeping steady-state memory flat for arbitrarily long runs.
const memoLimit = 1 << 16

// NewCorpus builds a corpus from a validated spec.
func NewCorpus(spec Spec) (*Corpus, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Corpus{spec: spec}, nil
}

// Spec returns the corpus specification.
func (c *Corpus) Spec() Spec { return c.spec }

// rngFor derives an independent generator for one sample index.
func (c *Corpus) rngFor(index int64) *rand.Rand {
	// splitmix64-style scramble so consecutive indices decorrelate.
	z := uint64(index) + uint64(c.spec.Seed)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// logNormal draws from a log-normal with the given median and sigma.
func logNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(sigma*rng.NormFloat64())
}

// Sample materialises the sample at the given index, serving repeats
// from the memo. Callers share the returned sample's Subsequences
// slice and must treat it as immutable (scenario shifts copy before
// mutating).
func (c *Corpus) Sample(index int64) Sample {
	c.mu.RLock()
	s, ok := c.memo[index]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = c.generate(index)
	c.mu.Lock()
	if c.memo == nil || len(c.memo) >= memoLimit {
		c.memo = make(map[int64]Sample, 1024)
	}
	c.memo[index] = s
	c.mu.Unlock()
	return s
}

// generate materialises the sample at the given index from scratch.
// The construction interleaves text and image subsequences until the
// fixed sequence length is reached, mirroring §2.3's packing of
// modality subsequences into fixed-length training sequences.
func (c *Corpus) generate(index int64) Sample {
	rng := c.rngFor(index)
	sp := c.spec
	s := Sample{Index: index, SeqLen: sp.SeqLen}
	remaining := sp.SeqLen

	drawText := func() int {
		t := int(logNormal(rng, sp.TextMedian, sp.TextSigma)) + 1
		if t > sp.MaxTextTokens {
			t = sp.MaxTextTokens
		}
		if t > remaining {
			t = remaining
		}
		return t
	}
	appendText := func(tokens int) {
		// Merge adjacent text runs only when the draw was clipped to a
		// sliver; otherwise keep distinct subsequences, matching the
		// per-subsequence statistics of Fig. 5(a).
		s.Subsequences = append(s.Subsequences, Subsequence{Modality: Text, Tokens: tokens})
		remaining -= tokens
	}
	fillTailWithText := func() {
		for remaining > 0 {
			appendText(drawText())
		}
	}

	images := 0
	for remaining > 0 {
		appendText(drawText())
		if remaining == 0 {
			break
		}
		if images >= sp.MaxImages {
			fillTailWithText()
			break
		}
		// Image subsequence: draw a source resolution, snap to the patch
		// grid, convert to tokens.
		res := int(logNormal(rng, sp.ResMedian, sp.ResSigma))
		if res < sp.MinResolution {
			res = sp.MinResolution
		}
		if res > sp.MaxResolution {
			res = sp.MaxResolution
		}
		res -= res % model.PatchSize
		tokens := model.ImageTokens(res)
		if tokens > remaining {
			// The image does not fit; finish the sequence with text.
			fillTailWithText()
			break
		}
		s.Subsequences = append(s.Subsequences, Subsequence{Modality: Image, Tokens: tokens, Resolution: res})
		images++
		remaining -= tokens
		if rng.Float64() < sp.GenImageFraction {
			s.GenImages++
		}
	}
	return s
}

// Batch materialises n consecutive samples starting at first.
func (c *Corpus) Batch(first int64, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = c.Sample(first + int64(i))
	}
	return out
}

// GlobalBatch returns the samples of global batch g under batch size bs.
func (c *Corpus) GlobalBatch(g int64, bs int) []Sample {
	return c.Batch(g*int64(bs), bs)
}
