package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(0, "runtime")
	tr.Complete("preprocess", "data", 0, 0, 0, 0.25)
	tr.Complete("F0", "pipeline", 1, 2, 0.25, 0.1)
	tr.Instant("failure", "scenario", 0, 1.5, map[string]any{"iter": 3})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != tr.Len() || tr.Len() != 4 {
		t.Fatalf("round-trip lost events: wrote %d, read %d", tr.Len(), len(decoded.TraceEvents))
	}
	// Seconds become microseconds.
	ev := decoded.TraceEvents[2]
	if ev.TS != 0.25*1e6 || ev.Dur != 0.1*1e6 || ev.PID != 1 || ev.TID != 2 {
		t.Errorf("event mangled: %+v", ev)
	}
}

func TestTraceEmptyWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["traceEvents"].([]any); !ok {
		t.Errorf("empty trace should still carry a traceEvents array: %s", buf.String())
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Complete("op", "x", w, 0, float64(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("lost events under concurrency: %d", tr.Len())
	}
}
