package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(0, "runtime")
	tr.Complete("preprocess", "data", 0, 0, 0, 0.25)
	tr.Complete("F0", "pipeline", 1, 2, 0.25, 0.1)
	tr.Instant("failure", "scenario", 0, 1.5, map[string]any{"iter": 3})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != tr.Len() || tr.Len() != 4 {
		t.Fatalf("round-trip lost events: wrote %d, read %d", tr.Len(), len(decoded.TraceEvents))
	}
	// Seconds become microseconds.
	ev := decoded.TraceEvents[2]
	if ev.TS != 0.25*1e6 || ev.Dur != 0.1*1e6 || ev.PID != 1 || ev.TID != 2 {
		t.Errorf("event mangled: %+v", ev)
	}
}

func TestTraceEmptyWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["traceEvents"].([]any); !ok {
		t.Errorf("empty trace should still carry a traceEvents array: %s", buf.String())
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Complete("op", "x", w, 0, float64(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("lost events under concurrency: %d", tr.Len())
	}
}

// TestTraceShardedLanes pins the sharded recorder's invariants under
// concurrent writers on distinct PID lanes: no event lost, MaxPID
// tracked incrementally, and each lane's events surface in that lane's
// append order (writers on different lanes interleave by the global
// sequence, but one writer's own events never reorder).
func TestTraceShardedLanes(t *testing.T) {
	tr := NewTrace()
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Complete("op", "x", w, 0, float64(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != writers*per {
		t.Fatalf("lost events: %d of %d", tr.Len(), writers*per)
	}
	if tr.MaxPID() != writers-1 {
		t.Errorf("MaxPID = %d, want %d", tr.MaxPID(), writers-1)
	}
	next := make([]int, writers)
	for _, ev := range tr.Events() {
		if int(ev.TS) != next[ev.PID]*1e6 {
			t.Fatalf("lane %d out of order: event ts %v, want %d", ev.PID, ev.TS, next[ev.PID])
		}
		next[ev.PID]++
	}
	for w, n := range next {
		if n != per {
			t.Errorf("lane %d surfaced %d events, want %d", w, n, per)
		}
	}
}

// TestTraceReserve: pre-growing a lane records nothing, and the
// reserved capacity absorbs that many appends without reallocating.
func TestTraceReserve(t *testing.T) {
	tr := NewTrace()
	tr.Reserve(3, 64)
	if tr.Len() != 0 {
		t.Fatalf("Reserve recorded %d events", tr.Len())
	}
	if tr.MaxPID() != 0 {
		t.Fatalf("Reserve moved MaxPID to %d", tr.MaxPID())
	}
	l := tr.lane(3)
	if cap(l.evs) < 64 {
		t.Fatalf("reserved capacity %d, want >= 64", cap(l.evs))
	}
	base := cap(l.evs)
	for i := 0; i < 64; i++ {
		tr.Complete("op", "x", 3, 0, float64(i), 1)
	}
	if cap(l.evs) != base {
		t.Errorf("lane regrew from %d to %d despite the reservation", base, cap(l.evs))
	}
	if tr.Len() != 64 || tr.MaxPID() != 3 {
		t.Errorf("Len=%d MaxPID=%d after 64 appends to lane 3", tr.Len(), tr.MaxPID())
	}
	tr.Reserve(3, -1) // no-op, must not shrink or panic
	if cap(l.evs) != base {
		t.Errorf("Reserve(-1) changed capacity")
	}
}

// TestTraceDeterministicBytes: two traces recording the same event
// sequence — whatever their lane layout — serialize byte-identically.
// This is the recorder-level half of the fleet's merged-trace
// determinism gate.
func TestTraceDeterministicBytes(t *testing.T) {
	record := func() *Trace {
		tr := NewTrace()
		tr.NameProcess(0, "runtime")
		for i := 0; i < 50; i++ {
			pid := i % 3
			tr.Complete("op", "x", pid, i%2, float64(i), 0.5)
			if i%7 == 0 {
				tr.Instant("mark", "x", pid, float64(i), map[string]any{"i": i})
			}
		}
		return tr
	}
	var a, b bytes.Buffer
	if err := record().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same recording serialized differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}
