package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceAppendOffset pins the per-job lane merge: PIDs shift by the
// base, event order is preserved, process names get the tenant
// prefix, and the source trace (and its args) stay untouched.
func TestTraceAppendOffset(t *testing.T) {
	job := NewTrace()
	job.NameProcess(0, "runtime")
	job.NameProcess(1, "dp-rank 0")
	job.Complete("fwd0", "pipeline", 1, 2, 0.5, 0.25)
	job.Instant("replan", "controller", 0, 1.0, map[string]any{"iter": 3})

	merged := NewTrace()
	merged.AppendOffset(job, 10, "jobA/")
	evs := merged.Events()
	if len(evs) != 4 {
		t.Fatalf("merged %d events, want 4", len(evs))
	}
	if evs[0].PID != 10 || evs[1].PID != 11 || evs[2].PID != 11 {
		t.Fatalf("PIDs not offset: %d %d %d", evs[0].PID, evs[1].PID, evs[2].PID)
	}
	if got := evs[0].Args["name"]; got != "jobA/runtime" {
		t.Fatalf("process name %v, want jobA/runtime", got)
	}
	// Source must be untouched (args maps not shared after rename).
	src := job.Events()
	if src[0].Args["name"] != "runtime" || src[0].PID != 0 {
		t.Fatalf("AppendOffset mutated the source: %+v", src[0])
	}
	if job.MaxPID() != 1 || merged.MaxPID() != 11 {
		t.Fatalf("MaxPID: job %d merged %d", job.MaxPID(), merged.MaxPID())
	}
}

// TestWriteJSONFileAtomic: the happy path lands valid JSON; a failing
// destination directory errors without leaving droppings; an existing
// file survives a failed overwrite attempt.
func TestWriteJSONFileAtomic(t *testing.T) {
	dir := t.TempDir()
	tr := NewTrace()
	tr.Complete("x", "c", 0, 0, 0, 1)
	path := filepath.Join(dir, "out.json")
	if err := tr.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.TraceEvents) != 1 {
		t.Fatalf("bad file: %v (%d events)", err, len(doc.TraceEvents))
	}

	// A mid-write failure must leave the previous contents intact and
	// clean up its temp file.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return os.ErrClosed
	}); err == nil {
		t.Fatal("failing writer accepted")
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(after, data) {
		t.Fatalf("failed write clobbered the destination: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}

	// Unwritable directory: error, no file.
	if err := tr.WriteJSONFile(filepath.Join(dir, "missing", "out.json")); err == nil {
		t.Fatal("write into missing directory accepted")
	}
}
