// Package metrics computes the evaluation quantities of §7: Model
// FLOPs Utilization (MFU), training throughput in tokens per second,
// and iteration-time breakdowns, plus small summary-statistics helpers
// shared by the experiment harnesses.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MFU returns the Model FLOPs Utilization: the fraction of the fleet's
// peak FLOP/s spent executing model FLOPs. flops is the model compute
// actually executed for the iteration (forward plus whatever backward
// the freeze setting requires), gpus the allocated accelerator count,
// peak the per-GPU peak FLOP/s and iterTime the iteration seconds.
func MFU(flops float64, gpus int, peak, iterTime float64) float64 {
	if gpus <= 0 || peak <= 0 || iterTime <= 0 {
		return 0
	}
	return flops / (float64(gpus) * peak * iterTime)
}

// Throughput returns training tokens per second: globalBatch sequences
// of seqLen tokens per iteration.
func Throughput(globalBatch, seqLen int, iterTime float64) float64 {
	if iterTime <= 0 {
		return 0
	}
	return float64(globalBatch) * float64(seqLen) / iterTime
}

// Breakdown decomposes one training iteration (§3's runtime loop).
type Breakdown struct {
	// PreprocessStall is time the GPUs wait for input data.
	PreprocessStall float64
	// Pipeline is the 1F1B makespan across all pipeline stages.
	Pipeline float64
	// GradSync is the exposed ZeRO-1 gradient/parameter synchronisation.
	GradSync float64
	// Optimizer is the sharded optimizer step.
	Optimizer float64
	// CheckpointStall is exposed asynchronous-checkpoint back-pressure.
	CheckpointStall float64
}

// Total returns the iteration wall time.
func (b Breakdown) Total() float64 {
	return b.PreprocessStall + b.Pipeline + b.GradSync + b.Optimizer + b.CheckpointStall
}

func (b Breakdown) String() string {
	return fmt.Sprintf("stall %.1fms | pipeline %.1fms | sync %.1fms | optim %.1fms | ckpt %.1fms",
		b.PreprocessStall*1e3, b.Pipeline*1e3, b.GradSync*1e3, b.Optimizer*1e3, b.CheckpointStall*1e3)
}

// Series summarises a sequence of observations.
type Series struct {
	values []float64
}

// Add appends an observation.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// N returns the observation count.
func (s *Series) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.values {
		t += v
	}
	return t / float64(len(s.values))
}

// Std returns the population standard deviation.
func (s *Series) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Series) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Min and Max return the extremes (0 when empty).
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		m = math.Min(m, v)
	}
	return m
}

func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		m = math.Max(m, v)
	}
	return m
}
