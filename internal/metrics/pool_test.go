package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestPoolStatsSnapshot(t *testing.T) {
	var s PoolStats
	s.RecordFetch(0.010)
	s.RecordFetch(0.030)
	s.RecordFailover()
	s.RecordRejection()
	s.RecordCacheHit()
	s.RecordCacheMiss()
	s.RecordCacheMiss()
	s.RecordCacheMiss()

	snap := s.Snapshot()
	if snap.Fetches != 2 || snap.Failovers != 1 || snap.Rejections != 1 {
		t.Errorf("counters = %+v", snap)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 3 {
		t.Errorf("cache counters = %+v", snap)
	}
	if snap.CacheHitRate != 0.25 {
		t.Errorf("hit rate = %g, want 0.25", snap.CacheHitRate)
	}
	if snap.MeanFetchSeconds != 0.020 {
		t.Errorf("mean latency = %g, want 0.020", snap.MeanFetchSeconds)
	}
	if snap.MaxFetchSeconds != 0.030 {
		t.Errorf("max latency = %g, want 0.030", snap.MaxFetchSeconds)
	}
	if !strings.Contains(snap.String(), "failovers 1") {
		t.Errorf("summary %q missing failovers", snap.String())
	}
}

func TestPoolStatsZero(t *testing.T) {
	var s PoolStats
	snap := s.Snapshot()
	if snap.CacheHitRate != 0 || snap.Fetches != 0 || snap.MeanFetchSeconds != 0 {
		t.Errorf("zero stats = %+v", snap)
	}
}

// The collector is recorded into from every in-flight fetch; the race
// gate pins concurrent safety.
func TestPoolStatsConcurrent(t *testing.T) {
	var s PoolStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.RecordFetch(0.001)
				s.RecordFailover()
				s.RecordCacheMiss()
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().Fetches; got != 400 {
		t.Errorf("fetches = %d, want 400", got)
	}
}
