package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Chrome-trace-format timeline emission: the runtime records every
// phase of every iteration (preprocess stall, per-rank pipeline ops,
// gradient sync, optimizer, checkpoint back-pressure, failures and
// recoveries) as "trace event format" JSON, loadable in
// chrome://tracing or Perfetto. Process IDs partition the timeline:
// pid 0 is the runtime's serial phases, pid d+1 is DP rank d, whose
// thread IDs are pipeline stages.

// TraceEvent is one trace entry. Ph "X" is a complete (duration)
// event, "i" an instant, "M" metadata; TS and Dur are microseconds,
// per the format spec.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates trace events; safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Complete records a duration event. start and dur are in simulated
// seconds; the trace stores microseconds.
func (t *Trace) Complete(name, cat string, pid, tid int, start, dur float64) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: start * 1e6, Dur: dur * 1e6, PID: pid, TID: tid})
}

// Instant records a point event at start seconds.
func (t *Trace) Instant(name, cat string, pid int, start float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: start * 1e6, PID: pid, Args: args})
}

// NameProcess attaches a human-readable name to a pid lane.
func (t *Trace) NameProcess(pid int, name string) {
	t.add(TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

func (t *Trace) add(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the recorded event count.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// MaxPID returns the highest process ID any recorded event uses (0 for
// an empty trace) — the lane width a merge must step over.
func (t *Trace) MaxPID() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	max := 0
	for _, ev := range t.events {
		if ev.PID > max {
			max = ev.PID
		}
	}
	return max
}

// AppendOffset merges another trace into this one as a block of
// private lanes: every event of src is appended in order with its PID
// shifted by pidBase, and process_name metadata gets the given prefix
// so lanes stay attributable after the merge. The fleet runtime uses
// it to fold per-job timelines into one fleet Chrome trace — job j's
// lanes land at [base_j, base_j + MaxPID_j], disjoint from every other
// tenant's. Deterministic: same src contents and arguments, same
// appended events.
func (t *Trace) AppendOffset(src *Trace, pidBase int, prefix string) {
	for _, ev := range src.Events() {
		ev.PID += pidBase
		if ev.Ph == "M" && ev.Name == "process_name" && prefix != "" {
			args := make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				args[k] = v
			}
			if name, ok := args["name"].(string); ok {
				args["name"] = prefix + name
			}
			ev.Args = args
		}
		t.add(ev)
	}
}

// WriteJSON emits the Chrome trace file ({"traceEvents": [...]}).
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}{events})
}

// WriteJSONFile writes the trace to path atomically: the JSON is
// encoded into a temporary file in the same directory and renamed into
// place only after a successful encode+sync, so a failure mid-write
// never leaves a truncated or corrupt timeline behind (the bare
// os.Create + encode it replaces did exactly that).
func (t *Trace) WriteJSONFile(path string) error {
	return WriteFileAtomic(path, t.WriteJSON)
}

// WriteFileAtomic streams write's output into a temporary file next to
// path and renames it into place on success. On any failure the
// temporary file is removed and the destination is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	return nil
}
