package metrics

import (
	"encoding/json"
	"io"
	"sync"
)

// Chrome-trace-format timeline emission: the runtime records every
// phase of every iteration (preprocess stall, per-rank pipeline ops,
// gradient sync, optimizer, checkpoint back-pressure, failures and
// recoveries) as "trace event format" JSON, loadable in
// chrome://tracing or Perfetto. Process IDs partition the timeline:
// pid 0 is the runtime's serial phases, pid d+1 is DP rank d, whose
// thread IDs are pipeline stages.

// TraceEvent is one trace entry. Ph "X" is a complete (duration)
// event, "i" an instant, "M" metadata; TS and Dur are microseconds,
// per the format spec.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates trace events; safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Complete records a duration event. start and dur are in simulated
// seconds; the trace stores microseconds.
func (t *Trace) Complete(name, cat string, pid, tid int, start, dur float64) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: start * 1e6, Dur: dur * 1e6, PID: pid, TID: tid})
}

// Instant records a point event at start seconds.
func (t *Trace) Instant(name, cat string, pid int, start float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: start * 1e6, PID: pid, Args: args})
}

// NameProcess attaches a human-readable name to a pid lane.
func (t *Trace) NameProcess(pid int, name string) {
	t.add(TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

func (t *Trace) add(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the recorded event count.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON emits the Chrome trace file ({"traceEvents": [...]}).
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}{events})
}
