package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
)

// Chrome-trace-format timeline emission: the runtime records every
// phase of every iteration (preprocess stall, per-rank pipeline ops,
// gradient sync, optimizer, checkpoint back-pressure, failures and
// recoveries) as "trace event format" JSON, loadable in
// chrome://tracing or Perfetto. Process IDs partition the timeline:
// pid 0 is the runtime's serial phases, pid d+1 is DP rank d, whose
// thread IDs are pipeline stages.

// TraceEvent is one trace entry. Ph "X" is a complete (duration)
// event, "i" an instant, "M" metadata; TS and Dur are microseconds,
// per the format spec.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates trace events; safe for concurrent use. The
// recorder is sharded: every PID lane owns its own append buffer and
// lock, so concurrent writers on different lanes (DP-rank workers,
// fleet tenants) never contend on a global mutex. A global atomic
// sequence number stamps every event, and reads merge the lanes by
// sequence — exactly the recorder's append order — so flush output is
// byte-identical to the single-buffer recorder this replaces.
type Trace struct {
	mu    sync.RWMutex // guards the lane table, not the events
	lanes map[int]*traceLane

	seq    atomic.Uint64
	count  atomic.Int64
	maxPID atomic.Int64
}

// traceLane is one PID's private append buffer.
type traceLane struct {
	mu  sync.Mutex
	evs []seqEvent
}

// seqEvent pairs an event with its global append sequence.
type seqEvent struct {
	seq uint64
	ev  TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// lane returns PID's lane, creating it on first use.
func (t *Trace) lane(pid int) *traceLane {
	t.mu.RLock()
	l := t.lanes[pid]
	t.mu.RUnlock()
	if l != nil {
		return l
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l = t.lanes[pid]; l != nil {
		return l
	}
	if t.lanes == nil {
		t.lanes = make(map[int]*traceLane)
	}
	l = &traceLane{}
	t.lanes[pid] = l
	return l
}

// bumpMaxPID raises the incremental MaxPID watermark to at least pid.
func (t *Trace) bumpMaxPID(pid int) {
	for {
		cur := t.maxPID.Load()
		if int64(pid) <= cur || t.maxPID.CompareAndSwap(cur, int64(pid)) {
			return
		}
	}
}

// Reserve pre-grows PID's lane for n more events without recording
// anything — callers that know the run length (iterations × ops per
// iteration) preallocate capacity instead of amortized re-growing.
func (t *Trace) Reserve(pid, n int) {
	if n <= 0 {
		return
	}
	l := t.lane(pid)
	l.mu.Lock()
	if free := cap(l.evs) - len(l.evs); free < n {
		grown := make([]seqEvent, len(l.evs), len(l.evs)+n)
		copy(grown, l.evs)
		l.evs = grown
	}
	l.mu.Unlock()
}

// Complete records a duration event. start and dur are in simulated
// seconds; the trace stores microseconds.
func (t *Trace) Complete(name, cat string, pid, tid int, start, dur float64) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: start * 1e6, Dur: dur * 1e6, PID: pid, TID: tid})
}

// Instant records a point event at start seconds.
func (t *Trace) Instant(name, cat string, pid int, start float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: start * 1e6, PID: pid, Args: args})
}

// NameProcess attaches a human-readable name to a pid lane.
func (t *Trace) NameProcess(pid int, name string) {
	t.add(TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

func (t *Trace) add(ev TraceEvent) {
	l := t.lane(ev.PID)
	l.mu.Lock()
	// The sequence is claimed under the lane lock: two writers on the
	// same lane serialise here, so every lane is (absent bulk merges)
	// already sorted by sequence and the read side can k-way merge
	// sorted runs instead of sorting the whole trace.
	seq := t.seq.Add(1) - 1
	l.evs = append(l.evs, seqEvent{seq, ev})
	l.mu.Unlock()
	t.count.Add(1)
	t.bumpMaxPID(ev.PID)
}

// Len returns the recorded event count.
func (t *Trace) Len() int {
	return int(t.count.Load())
}

// Events returns a snapshot of the recorded events in append order.
func (t *Trace) Events() []TraceEvent {
	return t.merged()
}

// merged collects every lane and restores the global append order by
// sequence number — a k-way merge over the lanes' sequence-sorted
// runs, not a global sort: merging k sorted runs of n total events is
// O(n log k) with no comparison-sort constant, and k (the lane count)
// is small. Sequences are claimed under the lane lock, so lanes are
// sorted by construction; a lane that a concurrent AppendOffset raced
// out of order (its bulk block claims sequences before taking lane
// locks) is detected and sorted first, preserving correctness on the
// slow path.
func (t *Trace) merged() []TraceEvent {
	t.mu.RLock()
	lanes := make([]*traceLane, 0, len(t.lanes))
	for _, l := range t.lanes {
		lanes = append(lanes, l)
	}
	t.mu.RUnlock()
	runs := make([][]seqEvent, 0, len(lanes))
	total := 0
	for _, l := range lanes {
		l.mu.Lock()
		run := l.evs[:len(l.evs):len(l.evs)]
		l.mu.Unlock()
		if len(run) == 0 {
			continue
		}
		if !sortedBySeq(run) {
			run = append([]seqEvent(nil), run...)
			sort.Slice(run, func(a, b int) bool { return run[a].seq < run[b].seq })
		}
		runs = append(runs, run)
		total += len(run)
	}
	out := make([]TraceEvent, 0, total)
	switch len(runs) {
	case 0:
		return nil
	case 1:
		for _, se := range runs[0] {
			out = append(out, se.ev)
		}
		return out
	}

	// Binary min-heap of run indices, keyed by each run's head sequence.
	cursor := make([]int, len(runs))
	head := func(i int) uint64 { return runs[i][cursor[i]].seq }
	h := make([]int, len(runs))
	for i := range h {
		h[i] = i
	}
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			if r := c + 1; r < len(h) && head(h[r]) < head(h[c]) {
				c = r
			}
			if head(h[i]) <= head(h[c]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		r := h[0]
		out = append(out, runs[r][cursor[r]].ev)
		cursor[r]++
		if cursor[r] == len(runs[r]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return out
}

// sortedBySeq reports whether the run is ascending in sequence.
func sortedBySeq(run []seqEvent) bool {
	for i := 1; i < len(run); i++ {
		if run[i].seq < run[i-1].seq {
			return false
		}
	}
	return true
}

// MaxPID returns the highest process ID any recorded event uses (0 for
// an empty trace) — the lane width a merge must step over. Tracked
// incrementally; O(1).
func (t *Trace) MaxPID() int {
	return int(t.maxPID.Load())
}

// AppendOffset merges another trace into this one as a block of
// private lanes: every event of src is appended in order with its PID
// shifted by pidBase, and process_name metadata gets the given prefix
// so lanes stay attributable after the merge. The fleet runtime uses
// it to fold per-job timelines into one fleet Chrome trace — job j's
// lanes land at [base_j, base_j + MaxPID_j], disjoint from every other
// tenant's. Deterministic: same src contents and arguments, same
// appended events. Bulk: one contiguous sequence block is claimed for
// the whole merge and each destination lane is locked exactly once.
func (t *Trace) AppendOffset(src *Trace, pidBase int, prefix string) {
	evs := src.merged()
	if len(evs) == 0 {
		return
	}
	base := t.seq.Add(uint64(len(evs))) - uint64(len(evs))
	perLane := make(map[int][]seqEvent)
	maxPID := 0
	for i, ev := range evs {
		ev.PID += pidBase
		if ev.Ph == "M" && ev.Name == "process_name" && prefix != "" {
			args := make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				args[k] = v
			}
			if name, ok := args["name"].(string); ok {
				args["name"] = prefix + name
			}
			ev.Args = args
		}
		if ev.PID > maxPID {
			maxPID = ev.PID
		}
		perLane[ev.PID] = append(perLane[ev.PID], seqEvent{base + uint64(i), ev})
	}
	for pid, run := range perLane {
		l := t.lane(pid)
		l.mu.Lock()
		l.evs = append(l.evs, run...)
		l.mu.Unlock()
	}
	t.count.Add(int64(len(evs)))
	t.bumpMaxPID(maxPID)
}

// WriteJSON emits the Chrome trace file ({"traceEvents": [...]}).
func (t *Trace) WriteJSON(w io.Writer) error {
	events := t.merged()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}{events})
}

// WriteJSONFile writes the trace to path atomically: the JSON is
// encoded into a temporary file in the same directory and renamed into
// place only after a successful encode+sync, so a failure mid-write
// never leaves a truncated or corrupt timeline behind (the bare
// os.Create + encode it replaces did exactly that).
func (t *Trace) WriteJSONFile(path string) error {
	return WriteFileAtomic(path, t.WriteJSON)
}

// WriteFileAtomic streams write's output into a temporary file next to
// path and renames it into place on success. On any failure the
// temporary file is removed and the destination is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metrics: atomic write %s: %w", path, err)
	}
	// The rename is atomic but not durable until the directory entry
	// itself is on stable storage: a crash after rename but before the
	// metadata flush can forget the file entirely. Fsync the parent
	// directory to close that window (EINVAL is tolerated — some
	// filesystems reject fsync on directories and provide the ordering
	// themselves).
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil && !errors.Is(serr, syscall.EINVAL) {
			return fmt.Errorf("metrics: atomic write %s: sync dir: %w", path, serr)
		}
	}
	return nil
}
