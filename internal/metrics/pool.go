package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PoolStats collects the consumer-side observables of an elastic
// preprocessing producer pool: fetch latency, failovers away from the
// deterministic primary, admission rejections, and the pool cache's
// hit rate. All methods are safe for concurrent use; the pool records
// from every in-flight fetch.
type PoolStats struct {
	fetches    atomic.Int64
	failovers  atomic.Int64
	rejections atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64

	mu      sync.Mutex
	latency Series

	// parent, when non-nil, receives a copy of every record — labeled
	// children roll up into the aggregate they were created from.
	parent *PoolStats

	lmu     sync.Mutex
	labeled map[string]*PoolStats
}

// Labeled returns (creating on first use) the named child collector.
// Records into a child also land in this aggregate, so a shared
// preprocessing service keeps one aggregate plus per-tenant breakdowns
// from one collector tree.
func (p *PoolStats) Labeled(name string) *PoolStats {
	p.lmu.Lock()
	defer p.lmu.Unlock()
	if p.labeled == nil {
		p.labeled = map[string]*PoolStats{}
	}
	c, ok := p.labeled[name]
	if !ok {
		c = &PoolStats{parent: p}
		p.labeled[name] = c
	}
	return c
}

// LabeledSnapshots returns a snapshot of every labeled child, keyed by
// label (nil when no children exist).
func (p *PoolStats) LabeledSnapshots() map[string]PoolSnapshot {
	p.lmu.Lock()
	defer p.lmu.Unlock()
	if len(p.labeled) == 0 {
		return nil
	}
	out := make(map[string]PoolSnapshot, len(p.labeled))
	for name, c := range p.labeled {
		out[name] = c.Snapshot()
	}
	return out
}

// RecordFetch records one successful fetch and its latency in seconds.
func (p *PoolStats) RecordFetch(seconds float64) {
	p.fetches.Add(1)
	p.mu.Lock()
	p.latency.Add(seconds)
	p.mu.Unlock()
	if p.parent != nil {
		p.parent.RecordFetch(seconds)
	}
}

// RecordFailover records one fetch served by (or moved toward) a
// producer other than its deterministic primary.
func (p *PoolStats) RecordFailover() {
	p.failovers.Add(1)
	if p.parent != nil {
		p.parent.RecordFailover()
	}
}

// RecordRejection records one fetch rejected by bounded admission.
func (p *PoolStats) RecordRejection() {
	p.rejections.Add(1)
	if p.parent != nil {
		p.parent.RecordRejection()
	}
}

// RecordCacheHit and RecordCacheMiss track the pool-side batch cache.
func (p *PoolStats) RecordCacheHit() {
	p.cacheHits.Add(1)
	if p.parent != nil {
		p.parent.RecordCacheHit()
	}
}

func (p *PoolStats) RecordCacheMiss() {
	p.cacheMiss.Add(1)
	if p.parent != nil {
		p.parent.RecordCacheMiss()
	}
}

// PoolSnapshot is a point-in-time copy of the pool counters.
type PoolSnapshot struct {
	// Fetches counts successful fetches (cache hits included).
	Fetches int64
	// Failovers counts fetches that left their primary producer —
	// because it was marked down or because an attempt on it failed.
	Failovers int64
	// Rejections counts fetches refused by bounded admission.
	Rejections int64
	// CacheHits / CacheMisses describe the pool-side batch cache;
	// CacheHitRate is hits over lookups (0 when no lookups happened).
	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64
	// MeanFetchSeconds / MaxFetchSeconds / P99FetchSeconds summarise
	// successful fetch latency.
	MeanFetchSeconds float64
	MaxFetchSeconds  float64
	P99FetchSeconds  float64
}

// Snapshot returns the current counters.
func (p *PoolStats) Snapshot() PoolSnapshot {
	s := PoolSnapshot{
		Fetches:     p.fetches.Load(),
		Failovers:   p.failovers.Load(),
		Rejections:  p.rejections.Load(),
		CacheHits:   p.cacheHits.Load(),
		CacheMisses: p.cacheMiss.Load(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	p.mu.Lock()
	s.MeanFetchSeconds = p.latency.Mean()
	s.MaxFetchSeconds = p.latency.Max()
	s.P99FetchSeconds = p.latency.Percentile(99)
	p.mu.Unlock()
	return s
}

func (s PoolSnapshot) String() string {
	return fmt.Sprintf("fetches %d (mean %.1fms, p99 %.1fms) | failovers %d | rejected %d | cache %.0f%% hit",
		s.Fetches, s.MeanFetchSeconds*1e3, s.P99FetchSeconds*1e3,
		s.Failovers, s.Rejections, 100*s.CacheHitRate)
}
