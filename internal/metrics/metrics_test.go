package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMFU(t *testing.T) {
	// 1000 GPUs at 312 TFLOP/s for 2s executing 3.12e17 FLOPs => 50%.
	got := MFU(3.12e17, 1000, 312e12, 2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MFU = %g, want 0.5", got)
	}
	if MFU(1, 0, 1, 1) != 0 || MFU(1, 1, 0, 1) != 0 || MFU(1, 1, 1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestThroughput(t *testing.T) {
	// 1920 sequences of 8192 tokens in 6s ~ 2.6M tokens/s (the Fig. 14
	// regime).
	got := Throughput(1920, 8192, 6)
	want := 1920.0 * 8192 / 6
	if got != want {
		t.Errorf("Throughput = %g, want %g", got, want)
	}
	if Throughput(1, 1, 0) != 0 {
		t.Error("zero time should give 0")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{PreprocessStall: 0.1, Pipeline: 2, GradSync: 0.3, Optimizer: 0.05, CheckpointStall: 0.02}
	if math.Abs(b.Total()-2.47) > 1e-12 {
		t.Errorf("Total = %g", b.Total())
	}
	if s := b.String(); len(s) == 0 {
		t.Error("empty breakdown string")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty series should be all zeros")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Percentile(0); got != 2 {
		t.Errorf("P0 = %g", got)
	}
	if got := s.Percentile(100); got != 8 {
		t.Errorf("P100 = %g", got)
	}
	wantStd := math.Sqrt((1 + 9 + 9 + 1) / 4.0)
	if math.Abs(s.Std()-wantStd) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std(), wantStd)
	}
}

// Property: MFU is linear in FLOPs and inverse in time; mean is always
// between min and max.
func TestMetricProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Series
		for _, r := range raw {
			s.Add(float64(r))
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9 &&
			s.Percentile(50) >= s.Min() && s.Percentile(50) <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if MFU(2e17, 100, 312e12, 1) != 2*MFU(1e17, 100, 312e12, 1) {
		t.Error("MFU not linear in FLOPs")
	}
}
