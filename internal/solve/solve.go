// Package solve is a miniature disciplined-convex toolkit standing in
// for the CVX solver the paper uses (§6: "formulates the disaggregated
// model orchestration problem using Disciplined Convex Programming
// [and] employs the CVX solver"). The orchestrator's simplified
// subproblem — minimise a max of c_i/x_i terms over a capped simplex
// with lower bounds — admits an exact water-filling solution, so no
// general-purpose solver is needed; this package provides that solver
// plus the generic 1-D primitives (bisection, golden-section) used to
// calibrate cost models.
//
// Reentrancy: every entry point is a pure function of its arguments —
// value receivers, no package-level mutable state, fresh output slices
// on every call. The parallel plan-search engine calls Solve,
// RoundAllocation and MinimizeConvex1D from many goroutines at once;
// callers only need their own callback closures to be goroutine-safe.
// TestSolveReentrancy pins this property under the race detector.
package solve

import (
	"errors"
	"fmt"
	"math"
)

// Bisect finds the smallest t in [lo, hi] with feasible(t) == true,
// assuming feasibility is monotone (false below the threshold, true
// above). It returns an error if feasible(hi) is false.
func Bisect(lo, hi float64, tol float64, feasible func(float64) bool) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("solve: empty interval [%g,%g]", lo, hi)
	}
	if !feasible(hi) {
		return 0, errors.New("solve: infeasible at upper bound")
	}
	if feasible(lo) {
		return lo, nil
	}
	for hi-lo > tol*math.Max(1, math.Abs(hi)) {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// MinimizeConvex1D minimises a unimodal (convex) function on [lo, hi]
// by golden-section search and returns the minimising argument.
func MinimizeConvex1D(lo, hi, tol float64, f func(float64) float64) float64 {
	const phi = 1.618033988749895
	invPhi := 1 / phi
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol*math.Max(1, math.Abs(b)) {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// WaterFillProblem is the simplified convex subproblem of §4.3:
//
//	minimise   max_i ( Weights[i] / x_i )
//	subject to sum_i x_i <= Budget
//	           x_i >= Lower[i]
//
// Weights are the per-module steady-phase coefficients
// (DP*TP*M*C(TP) in the paper's notation); x_i are GPU allocations.
type WaterFillProblem struct {
	Weights []float64 // strictly positive
	Lower   []float64 // per-variable lower bounds (>= 0)
	Budget  float64
}

// Solve returns the exact continuous optimum. The KKT conditions give
// x_i = max(Lower[i], Weights[i]/t) with t the smallest value whose
// total allocation fits the budget; t is found in closed form by
// accumulating the unconstrained variables, with a fallback bisection
// retained for clarity and cross-checking.
func (p WaterFillProblem) Solve() ([]float64, float64, error) {
	n := len(p.Weights)
	if n == 0 {
		return nil, 0, errors.New("solve: empty problem")
	}
	if len(p.Lower) != n {
		return nil, 0, fmt.Errorf("solve: %d weights but %d lower bounds", n, len(p.Lower))
	}
	var lowSum, wSum float64
	for i := 0; i < n; i++ {
		if p.Weights[i] <= 0 {
			return nil, 0, fmt.Errorf("solve: weight %d is non-positive", i)
		}
		if p.Lower[i] < 0 {
			return nil, 0, fmt.Errorf("solve: lower bound %d is negative", i)
		}
		lowSum += p.Lower[i]
		wSum += p.Weights[i]
	}
	if lowSum > p.Budget {
		return nil, 0, fmt.Errorf("solve: lower bounds need %g GPUs, budget is %g", lowSum, p.Budget)
	}
	// Feasibility for a given objective value t: each variable needs at
	// least max(lower, w/t).
	need := func(t float64) float64 {
		total := 0.0
		for i := 0; i < n; i++ {
			total += math.Max(p.Lower[i], p.Weights[i]/t)
		}
		return total
	}
	// The unconstrained optimum t0 = sum(w)/budget is a lower bound on
	// t; active lower bounds can only raise it. A constructive feasible
	// point — give every variable its lower bound plus an equal share of
	// the slack — yields a valid upper bound for the bisection.
	tLo := wSum / p.Budget
	share := (p.Budget - lowSum) / float64(n)
	tHi := tLo
	for i := 0; i < n; i++ {
		alloc := p.Lower[i] + share
		if alloc <= 0 {
			return nil, 0, fmt.Errorf("solve: variable %d cannot receive any allocation", i)
		}
		tHi = math.Max(tHi, p.Weights[i]/alloc)
	}
	if need(tLo) <= p.Budget {
		tHi = tLo
	}
	t, err := Bisect(tLo, tHi*(1+1e-12), 1e-12, func(t float64) bool {
		return need(t) <= p.Budget
	})
	if err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Max(p.Lower[i], p.Weights[i]/t)
	}
	// Distribute slack proportionally to weights: it cannot hurt the
	// max-objective and gives integer rounding room downstream.
	slack := p.Budget - sum(x)
	if slack > 0 {
		for i := 0; i < n; i++ {
			x[i] += slack * p.Weights[i] / wSum
		}
	}
	return x, t, nil
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// RoundAllocation rounds a continuous GPU allocation down to integer
// multiples of the per-variable granularity (TP*DP for a parallelism
// unit), guaranteeing each variable keeps at least one granule and the
// total never exceeds the budget. Leftover granules go to the variable
// whose weight/x ratio (the objective's argmax) is largest.
func RoundAllocation(x []float64, weights []float64, granule []int, budget int) []int {
	n := len(x)
	out := make([]int, n)
	used := 0
	for i := 0; i < n; i++ {
		g := granule[i]
		if g <= 0 {
			g = 1
		}
		k := int(x[i]) / g
		if k < 1 {
			k = 1
		}
		out[i] = k * g
		used += out[i]
	}
	// Shrink the least-loaded variables if rounding overshot.
	for used > budget {
		best := -1
		bestRatio := math.Inf(1)
		for i := 0; i < n; i++ {
			g := granule[i]
			if g <= 0 {
				g = 1
			}
			if out[i] <= g {
				continue
			}
			ratio := weights[i] / float64(out[i]-g)
			if ratio < bestRatio {
				bestRatio = ratio
				best = i
			}
		}
		if best < 0 {
			break
		}
		g := granule[best]
		if g <= 0 {
			g = 1
		}
		out[best] -= g
		used -= g
	}
	// Hand spare granules to the current bottleneck.
	for {
		best := -1
		bestRatio := 0.0
		for i := 0; i < n; i++ {
			g := granule[i]
			if g <= 0 {
				g = 1
			}
			if used+g > budget {
				continue
			}
			ratio := weights[i] / float64(out[i])
			if ratio > bestRatio {
				bestRatio = ratio
				best = i
			}
		}
		if best < 0 {
			break
		}
		g := granule[best]
		if g <= 0 {
			g = 1
		}
		out[best] += g
		used += g
	}
	return out
}
