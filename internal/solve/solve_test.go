package solve

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	got, err := Bisect(0, 100, 1e-9, func(x float64) bool { return x >= 37.5 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-37.5) > 1e-6 {
		t.Errorf("Bisect = %g, want 37.5", got)
	}
	if _, err := Bisect(0, 10, 1e-9, func(float64) bool { return false }); err == nil {
		t.Error("Bisect should fail when infeasible at hi")
	}
	if _, err := Bisect(5, 1, 1e-9, func(float64) bool { return true }); err == nil {
		t.Error("Bisect should reject empty interval")
	}
	// Feasible everywhere returns lo.
	got, err = Bisect(2, 10, 1e-9, func(float64) bool { return true })
	if err != nil || got != 2 {
		t.Errorf("Bisect trivial = %g, %v", got, err)
	}
}

func TestMinimizeConvex1D(t *testing.T) {
	got := MinimizeConvex1D(-10, 10, 1e-10, func(x float64) float64 { return (x - 3) * (x - 3) })
	if math.Abs(got-3) > 1e-6 {
		t.Errorf("minimiser = %g, want 3", got)
	}
	got = MinimizeConvex1D(0, 5, 1e-10, math.Exp) // monotone: edge minimum
	if math.Abs(got) > 1e-4 {
		t.Errorf("monotone minimiser = %g, want ~0", got)
	}
}

func TestWaterFillUnconstrained(t *testing.T) {
	// With no lower bounds the optimum allocates proportional to weight.
	p := WaterFillProblem{Weights: []float64{1, 2, 3}, Lower: []float64{0, 0, 0}, Budget: 60}
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if math.Abs(obj-0.1) > 1e-9 {
		t.Errorf("objective = %g, want 0.1", obj)
	}
}

func TestWaterFillWithActiveLowerBounds(t *testing.T) {
	// Variable 0 is pinned above its proportional share; the others
	// split what remains proportionally.
	p := WaterFillProblem{Weights: []float64{1, 10, 10}, Lower: []float64{30, 0, 0}, Budget: 60}
	x, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 30-1e-9 {
		t.Errorf("x[0] = %g violates its lower bound", x[0])
	}
	if math.Abs(x[1]-x[2]) > 1e-6 {
		t.Errorf("equal weights should split equally: %g vs %g", x[1], x[2])
	}
	if total := x[0] + x[1] + x[2]; total > 60+1e-6 {
		t.Errorf("allocation %g exceeds budget", total)
	}
}

func TestWaterFillErrors(t *testing.T) {
	if _, _, err := (WaterFillProblem{}).Solve(); err == nil {
		t.Error("empty problem should fail")
	}
	bad := WaterFillProblem{Weights: []float64{1}, Lower: []float64{5}, Budget: 3}
	if _, _, err := bad.Solve(); err == nil {
		t.Error("infeasible lower bounds should fail")
	}
	neg := WaterFillProblem{Weights: []float64{-1}, Lower: []float64{0}, Budget: 3}
	if _, _, err := neg.Solve(); err == nil {
		t.Error("negative weight should fail")
	}
	mismatch := WaterFillProblem{Weights: []float64{1, 2}, Lower: []float64{0}, Budget: 3}
	if _, _, err := mismatch.Solve(); err == nil {
		t.Error("length mismatch should fail")
	}
}

// Property: the water-filling solution is optimal — no feasible random
// reallocation achieves a lower max(w_i/x_i).
func TestWaterFillOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objective := func(w, x []float64) float64 {
		worst := 0.0
		for i := range w {
			worst = math.Max(worst, w[i]/x[i])
		}
		return worst
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4) + 2
		w := make([]float64, n)
		lower := make([]float64, n)
		var lowSum float64
		for i := range w {
			w[i] = rng.Float64()*9 + 1
			lower[i] = rng.Float64() * 3
			lowSum += lower[i]
		}
		budget := lowSum + rng.Float64()*20 + 1
		p := WaterFillProblem{Weights: w, Lower: lower, Budget: budget}
		x, obj, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(objective(w, x)-obj) > 1e-6*obj {
			t.Fatalf("reported objective %g != recomputed %g", obj, objective(w, x))
		}
		// Random feasible competitor: never better than the solver.
		for k := 0; k < 20; k++ {
			comp := make([]float64, n)
			rem := budget - lowSum
			weights := make([]float64, n)
			var wsum float64
			for i := range weights {
				weights[i] = rng.Float64() + 0.01
				wsum += weights[i]
			}
			for i := range comp {
				comp[i] = lower[i] + rem*weights[i]/wsum
			}
			if objective(w, comp) < obj*(1-1e-9) {
				t.Fatalf("random competitor beat the solver: %g < %g", objective(w, comp), obj)
			}
		}
	}
}

func TestRoundAllocation(t *testing.T) {
	x := []float64{10.7, 21.9, 30.2}
	w := []float64{1, 2, 3}
	g := []int{4, 8, 2}
	out := RoundAllocation(x, w, g, 63)
	total := 0
	for i, v := range out {
		if v%g[i] != 0 {
			t.Errorf("out[%d] = %d not a multiple of %d", i, v, g[i])
		}
		if v < g[i] {
			t.Errorf("out[%d] = %d below one granule", i, v)
		}
		total += v
	}
	if total > 63 {
		t.Errorf("total %d exceeds budget", total)
	}
}

// Property: rounding respects granularity, minimum granule, and budget
// whenever the budget admits one granule per variable.
func TestRoundAllocationInvariants(t *testing.T) {
	f := func(seeds [3]uint8, budgetRaw uint8) bool {
		g := []int{int(seeds[0]%8) + 1, int(seeds[1]%8) + 1, int(seeds[2]%8) + 1}
		minBudget := g[0] + g[1] + g[2]
		budget := minBudget + int(budgetRaw)
		x := []float64{float64(seeds[0]) + 1, float64(seeds[1]) + 1, float64(seeds[2]) + 1}
		w := []float64{1, 1, 1}
		out := RoundAllocation(x, w, g, budget)
		total := 0
		for i, v := range out {
			if v%g[i] != 0 || v < g[i] {
				return false
			}
			total += v
		}
		return total <= budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSolveReentrancy pins the package doc's concurrency guarantee:
// every entry point is a pure function, so concurrent callers sharing
// the same problem values must race-cleanly produce identical results.
// Run under -race (the CI race gate does).
func TestSolveReentrancy(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{3.2, 120.5, 7.8},
		Lower:   []float64{1, 64, 1},
		Budget:  1296,
	}
	refX, refT, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	refRound := RoundAllocation(refX, p.Weights, []int{1, 8, 1}, 1296)
	refMin := MinimizeConvex1D(0, 10, 1e-6, func(x float64) float64 { return (x - 3) * (x - 3) })

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				x, tt, err := p.Solve()
				if err != nil {
					errs <- err
					return
				}
				if tt != refT || !reflect.DeepEqual(x, refX) {
					errs <- fmt.Errorf("Solve diverged: got (%v, %g), want (%v, %g)", x, tt, refX, refT)
					return
				}
				if r := RoundAllocation(x, p.Weights, []int{1, 8, 1}, 1296); !reflect.DeepEqual(r, refRound) {
					errs <- fmt.Errorf("RoundAllocation diverged: got %v, want %v", r, refRound)
					return
				}
				if m := MinimizeConvex1D(0, 10, 1e-6, func(x float64) float64 { return (x - 3) * (x - 3) }); m != refMin {
					errs <- fmt.Errorf("MinimizeConvex1D diverged: got %g, want %g", m, refMin)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
